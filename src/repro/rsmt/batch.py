"""Batched RSMT construction over many nets at once.

The congestion estimator and the evaluation router both decompose every
net of the design per round; calling :func:`repro.rsmt.build_rsmt` in a
Python loop makes tree construction the dominant cost of both.  This
module packs all point sets into one CSR batch and dispatches to
:func:`repro.kernels.steiner_batch`, whose vectorized backend groups
nets by degree and runs Prim on whole ``(batch, n, n)`` tensors.

The reference backend is the historical per-net loop, so
``REPRO_KERNELS=reference`` reproduces the old behavior exactly.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from .topology import Topology


def build_rsmt_batch(x, y, start, steinerize_max_degree: int = 64) -> list:
    """Near-minimal RSMTs for CSR-packed per-net point sets.

    Args:
        x, y: concatenated point coordinates of every net.  Each net's
            points must be deduplicated (both call sites dedup Gcells
            before building trees).
        start: CSR offsets, length ``nets + 1``; net ``i`` owns points
            ``start[i]:start[i + 1]``.
        steinerize_max_degree: per-net cutoff above which the plain RMST
            is kept (same contract as :func:`repro.rsmt.build_rsmt`).

    Returns:
        One :class:`Topology` per net, in net order, equal to calling
        :func:`build_rsmt` on each slice.
    """
    start = np.asarray(start, dtype=np.int64)
    parts = kernels.steiner_batch(
        np.asarray(x, dtype=np.float64),
        np.asarray(y, dtype=np.float64),
        start,
        steinerize_max_degree,
    )
    return [Topology(px, py, is_pin, edges) for px, py, is_pin, edges in parts]
