"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate``  — synthesize a suite benchmark and save it (Bookshelf).
* ``ingest``    — load a Yosys ``write_json`` netlist, report its
  structure, and optionally save it (Bookshelf).
* ``place``     — place a design (puffer / wirelength / replace /
  commercial flows) and save the result; ``--mode slots`` runs the
  fixed-slot assignment pipeline instead of continuous placement.
* ``route``     — route a placed design and report HOF/VOF/WL.
* ``explore``   — run the strategy exploration on a small design.
* ``suite``     — the Table-II comparison across the benchmark suite.
* ``report``    — summarize a :mod:`repro.obs` trace file.
* ``verify``    — invariant checkers + cross-backend differential
  harness (:mod:`repro.verify`); ``--quick`` is the CI smoke mode.
* ``serve``     — boot the async placement job server (:mod:`repro.serve`);
  ``--shards N`` runs placements on worker process shards and
  ``--client-weight`` tunes the fair queue.
* ``submit``    — post a placement job to a running server;
  ``--follow`` streams its progress events live.
* ``jobs``      — list, inspect (``--events``), or cancel jobs on a
  running server.
* ``eco``       — incremental placement sessions (:mod:`repro.eco`):
  ``eco run`` converges locally and applies deltas from a JSON file;
  ``eco open`` / ``eco delta`` / ``eco show`` / ``eco sessions`` /
  ``eco close`` drive the stateful sessions API of a running server.

``place`` and ``suite`` additionally take ``--verify {off,cheap,full}``
to run the invariant checkers on every produced placement.

Every run command is a thin wrapper over :mod:`repro.api`; flow
resolution and orchestration live behind that facade.  The shared
``--trace PATH`` flag streams a :mod:`repro.obs` JSONL trace of the run,
which ``repro report`` renders as a per-stage breakdown.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import api, kernels
from .benchgen import make_design, suite_names
from .netlist import load_design, save_design
from .placer import PlacementParams
from .slots import SlotParams


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PUFFER routability-driven placement (DAC 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="synthesize a suite benchmark")
    generate.add_argument("design", choices=suite_names())
    generate.add_argument("--scale", type=float, default=0.004)
    generate.add_argument("--out", required=True, help="output directory")

    ingest = sub.add_parser("ingest", help="load a Yosys write_json netlist")
    ingest.add_argument("netlist", help="path to a Yosys *_mapped.json file")
    ingest.add_argument("--top", default=None,
                        help="module to ingest (default: the top attribute)")
    ingest.add_argument("--lib", default=None, metavar="PATH",
                        help="JSON cell-size table overriding the built-in "
                        "liberty-lite widths")
    ingest.add_argument("--utilization", type=float, default=0.7,
                        help="target utilization when sizing the die")
    ingest.add_argument("--out", help="directory to save the design (Bookshelf)")

    place = sub.add_parser("place", help="place a design")
    place.add_argument(
        "design",
        help="suite benchmark name or path to a Yosys *_mapped.json netlist",
    )
    place.add_argument("--scale", type=float, default=0.004)
    place.add_argument("--flow", choices=list(api.FLOWS), default="puffer")
    place.add_argument("--mode", choices=list(api.MODES), default="standard",
                       help="'slots' assigns cells to a fixed slot grid "
                       "instead of placing continuously")
    place.add_argument("--seed", type=int, default=0)
    place.add_argument("--max-iters", type=int, default=900)
    place.add_argument("--sa-iters", type=int, default=None,
                       help="slots mode: SA refinement iterations "
                       "(default scales with the design)")
    place.add_argument("--out", help="directory to save the placed design")
    place.add_argument("--route", action="store_true", help="evaluate with the router")
    _add_runtime_args(place, jobs=False, verify=True)

    route = sub.add_parser("route", help="route a saved placement")
    route.add_argument("directory")
    route.add_argument("name")
    _add_runtime_args(route, jobs=False)

    explore = sub.add_parser("explore", help="strategy exploration (Sec. III-C)")
    explore.add_argument("--design", default="OR1200", choices=suite_names())
    explore.add_argument("--scale", type=float, default=0.008)
    explore.add_argument("--budget", type=int, default=12)
    explore.add_argument("--seed", type=int, default=7,
                         help="exploration RNG seed")
    explore.add_argument("--batch-size", type=int, default=None,
                         help="TPE candidates per round (default: --jobs; "
                         "1 is the bit-exact serial protocol)")
    explore.add_argument("--priors", choices=list(api.PRIOR_MODES),
                         default="auto",
                         help="transfer-prior warm start from completed "
                         "explorations when a cache is available "
                         "(ignored with --resume: journal replay needs "
                         "the original candidate stream)")
    explore.add_argument("--follow", action="store_true",
                         help="print every trial as it completes")
    explore.add_argument("--server", action="store_true",
                         help="run the exploration on a running repro serve "
                         "endpoint (--host/--port) instead of locally")
    explore.add_argument("--out", help="write the explored parameters as JSON")
    _add_runtime_args(explore)
    _add_server_args(explore)

    suite = sub.add_parser("suite", help="Table-II comparison")
    suite.add_argument("--scale", type=float, default=0.004)
    suite.add_argument(
        "--designs", nargs="*", default=None, help="subset of benchmarks"
    )
    suite.add_argument(
        "--seed", type=int, default=0, help="benchmark-generation seed offset"
    )
    _add_runtime_args(suite, verify=True)

    report = sub.add_parser("report", help="summarize a repro.obs trace")
    report.add_argument("trace", help="path to a JSONL trace file")
    report.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the N most expensive stages (by total wall-clock)",
    )

    serve = sub.add_parser("serve", help="run the placement job server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8180,
                       help="bind port (0 picks a free one)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent in-process placement workers "
                       "(ignored when --shards is set)")
    serve.add_argument("--shards", type=int, default=0,
                       help="worker *process* shards; a crashed or "
                       "timed-out worker fails only its job")
    serve.add_argument("--capacity", type=int, default=8,
                       help="bounded queue size (backpressure beyond it)")
    serve.add_argument(
        "--client-weight", action="append", default=None,
        metavar="CLIENT=W",
        help="fair-queue weight for a client id (repeatable), "
        "e.g. --client-weight batch=1 --client-weight interactive=3",
    )
    serve.add_argument("--cache-dir", default=None,
                       help="artifact cache for result memoization")
    serve.add_argument("--timeout", type=float, default=None,
                       help="default per-job timeout in seconds")
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="stream a repro.obs JSONL trace of the server to PATH",
    )

    submit = sub.add_parser("submit", help="submit a job to a running server")
    submit.add_argument(
        "design",
        help="suite benchmark name or path to a Yosys *_mapped.json netlist "
        "(the path must be readable by the server)",
    )
    submit.add_argument("--flow", choices=list(api.FLOWS), default="puffer")
    submit.add_argument("--mode", choices=list(api.MODES), default="standard",
                        help="'slots' runs fixed-slot assignment")
    submit.add_argument("--scale", type=float, default=0.004)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--max-iters", type=int, default=900)
    submit.add_argument("--route", action="store_true",
                        help="also evaluate with the global router")
    submit.add_argument("--timeout", type=float, default=None,
                        help="per-job timeout in seconds")
    submit.add_argument("--priority", type=int, default=0,
                        help="scheduling priority (larger = more important; "
                        "may shed lower-priority queued work when full)")
    submit.add_argument("--client-id", default=None,
                        help="fair-queue bucket the job schedules from")
    submit.add_argument("--follow", action="store_true",
                        help="stream the job's progress events until it "
                        "finishes, then print the result")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes and print the result")
    submit.add_argument("--wait-timeout", type=float, default=None,
                        help="give up polling after this many seconds")
    _add_server_args(submit)

    jobs = sub.add_parser("jobs", help="inspect jobs on a running server")
    jobs.add_argument("job", nargs="?", default=None,
                      help="job id to show (omit to list all jobs)")
    jobs.add_argument("--state", default=None,
                      help="filter the listing by lifecycle state")
    jobs.add_argument("--cancel", metavar="JOB",
                      help="cancel the given job instead of listing")
    jobs.add_argument("--events", metavar="JOB",
                      help="print the given job's event stream so far")
    _add_server_args(jobs)

    eco = sub.add_parser("eco", help="incremental placement sessions (ECO)")
    eco_sub = eco.add_subparsers(dest="eco_command", required=True)

    eco_run = eco_sub.add_parser(
        "run", help="local session: converge once, apply deltas from a JSON file"
    )
    eco_run.add_argument("design", choices=suite_names())
    eco_run.add_argument("--scale", type=float, default=0.004)
    eco_run.add_argument("--seed", type=int, default=0)
    eco_run.add_argument(
        "--deltas", metavar="PATH",
        help="JSON file with a list of delta wire dicts to apply in order",
    )
    eco_run.add_argument(
        "--verify", default="cheap", choices=["off", "cheap", "full"],
        help="invariant-checker level run after every delta",
    )
    eco_run.add_argument(
        "--cache-dir", default=None,
        help="artifact cache; a repeated cold start restores from disk",
    )
    eco_run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="stream a repro.obs JSONL trace of the session to PATH",
    )

    eco_open = eco_sub.add_parser("open", help="open a session on a running server")
    eco_open.add_argument("design", choices=suite_names())
    eco_open.add_argument("--scale", type=float, default=0.004)
    eco_open.add_argument("--seed", type=int, default=0)
    eco_open.add_argument("--verify", default="cheap",
                          choices=["off", "cheap", "full"])
    eco_open.add_argument("--wait", action="store_true",
                          help="poll until the cold start finishes")
    eco_open.add_argument("--wait-timeout", type=float, default=None)
    _add_server_args(eco_open)

    eco_sessions = eco_sub.add_parser("sessions", help="list server sessions")
    _add_server_args(eco_sessions)

    eco_show = eco_sub.add_parser("show", help="show one session")
    eco_show.add_argument("session")
    _add_server_args(eco_show)

    eco_delta = eco_sub.add_parser(
        "delta", help="submit an incremental delta to a session"
    )
    eco_delta.add_argument("session")
    eco_delta.add_argument(
        "--json", dest="payload", metavar="JSON",
        help="delta wire dict, e.g. "
        '\'{"kind": "resize_cell", "cell": 7, "width": 12.0}\'',
    )
    eco_delta.add_argument(
        "--file", dest="payload_file", metavar="PATH",
        help="read the delta wire dict from a JSON file",
    )
    eco_delta.add_argument("--wait", action="store_true",
                           help="poll until the delta finishes")
    eco_delta.add_argument("--wait-timeout", type=float, default=None)
    _add_server_args(eco_delta)

    eco_close = eco_sub.add_parser("close", help="close a session (GC its state)")
    eco_close.add_argument("session")
    _add_server_args(eco_close)

    verify = sub.add_parser(
        "verify", help="invariant + cross-backend differential verification"
    )
    verify.add_argument("--design", default="OR1200", choices=suite_names())
    verify.add_argument("--scale", type=float, default=0.004)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: smaller design, fewer placer iterations",
    )
    verify.add_argument(
        "--out", help="write the machine-readable JSON report to this path"
    )
    _add_runtime_args(verify, jobs=False)
    return parser


def _add_runtime_args(parser, jobs: bool = True, verify: bool = False) -> None:
    """The shared execution flags.

    Every run command gets ``--trace``; ``verify=True`` adds the
    ``--verify`` checker-level flag; commands that go through
    :mod:`repro.runtime` (``jobs=True``) additionally get the
    worker/cache/resume flags.
    """
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="stream a repro.obs JSONL trace of the run to PATH",
    )
    parser.add_argument(
        "--kernels", default=None, choices=list(kernels.BACKENDS),
        help="numpy kernel backend for the hot paths "
        f"(default: ${kernels.ENV_VAR} or 'vectorized')",
    )
    if verify:
        parser.add_argument(
            "--verify", default="off", choices=["off", "cheap", "full"],
            help="run the repro.verify invariant checkers on the result",
        )
    if not jobs:
        return
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = inline serial execution)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="artifact-cache directory; reruns reuse finished work",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from the checkpoint journal of an interrupted run",
    )
    parser.add_argument(
        "--journal", default=None,
        help="checkpoint journal path (default: <cache-dir or "
        f"{DEFAULT_RUNTIME_DIR}>/<command>.journal)",
    )


def _add_server_args(parser) -> None:
    """Address flags shared by the server-client commands."""
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8180)


DEFAULT_RUNTIME_DIR = ".repro_runtime"


def _journal_path(args, command: str) -> str:
    import os

    if args.journal:
        return args.journal
    root = args.cache_dir or DEFAULT_RUNTIME_DIR
    return os.path.join(root, f"{command}.journal")


def cmd_generate(args) -> int:
    design = make_design(args.design, args.scale)
    save_design(design, args.out)
    print(f"wrote {design} to {args.out}")
    return 0


def cmd_ingest(args) -> int:
    from .netlist import CellLibrary, load_yosys, validate_design

    library = CellLibrary.from_json(args.lib) if args.lib else None
    design = load_yosys(
        args.netlist,
        top=args.top,
        library=library,
        utilization=args.utilization,
    )
    movable = int(design.movable.sum())
    die = design.die
    print(
        f"{design.name}: {design.num_cells} cells "
        f"({movable} movable, {design.num_cells - movable} terminals), "
        f"{design.num_nets} nets, {design.num_pins} pins"
    )
    print(f"die {die.xhi - die.xlo:g} x {die.yhi - die.ylo:g}")
    report = validate_design(design)
    print(report)
    if args.out:
        save_design(design, args.out)
        print(f"saved to {args.out}")
    return 0 if report.ok else 1


def cmd_place(args) -> int:
    config = api.RunConfig(
        scale=args.scale,
        seed=args.seed,
        placement=PlacementParams(max_iters=args.max_iters),
        mode=args.mode,
        slots=(
            SlotParams(sa_iters=args.sa_iters)
            if args.mode == "slots" and args.sa_iters is not None
            else None
        ),
        verify=args.verify,
    )
    result = api.run(
        args.design,
        flow=args.flow,
        config=config,
        trace=args.trace,
        route=args.route,
        verify_legal=True,
    )
    print(f"{result.flow}: HPWL {result.hpwl:.6g}, legal={result.legality.ok}")
    if args.route:
        print(result.route_report.summary())
    verify_ok = True
    if result.verify_report is not None:
        verify_ok = result.verify_report.ok
        print(
            f"verify[{args.verify}]: {len(result.verify_report.checkers_run)} "
            f"checkers, {len(result.verify_report.errors)} errors, "
            f"{len(result.verify_report.warnings)} warnings"
        )
        for violation in result.verify_report.violations:
            print(f"  {violation}")
    if args.out:
        save_design(result.design, args.out)
        print(f"saved to {args.out}")
    return 0 if result.legality.ok and verify_ok else 1


def cmd_route(args) -> int:
    design = load_design(args.directory, args.name)
    result = api.route(design, trace=args.trace)
    print(result.route_report.summary())
    return 0


def _format_trial(trial) -> str:
    """One ``repro explore --follow`` line per completed trial."""
    flags = []
    if trial.cached:
        flags.append("cached")
    if trial.overflow is None and trial.wirelength is None:
        flags.append("failed")
    suffix = f" ({', '.join(flags)})" if flags else ""
    return f"[{trial.index}] {trial.stage:14s} loss {trial.loss:.4f}{suffix}"


def _print_exploration_params(params: dict, out: str | None) -> None:
    values = {k: v for k, v in params.items() if k != "schema_version"}
    print(json.dumps(values, indent=2))
    if out:
        with open(out, "w") as f:
            json.dump(values, f, indent=2)


def _explore_remote(args, config) -> int:
    """``repro explore --server``: drive ``/v1/explorations`` remotely."""
    from .serve import HttpServiceClient, ServeError

    client = HttpServiceClient(args.host, args.port)
    try:
        exploration = client.create_exploration(config)
    except (ServeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{exploration['id']} {exploration['state']}")
    if args.follow:
        for event in client.follow_exploration(exploration["id"]):
            if event.kind == "trial":
                print(_format_trial(event.trial), flush=True)
            else:
                print(f"state {event.state}", flush=True)
        exploration = client.exploration(exploration["id"])
    else:
        exploration = client.wait_exploration(exploration["id"])
    if exploration["state"] != "done":
        print(f"error: {exploration.get('error') or exploration['state']}",
              file=sys.stderr)
        return 1
    report = client.exploration_report(exploration["id"])
    print(
        f"explored {report['evaluations']} configurations; "
        f"best objective {report['best_loss']:.3f}%"
    )
    _print_exploration_params(report["params"], args.out)
    return 0


def cmd_explore(args) -> int:
    from .runtime import ArtifactCache, Journal, Telemetry
    from .tpe import TransferPriors

    config = api.ExploreConfig(
        design=args.design,
        scale=args.scale,
        budget=args.budget,
        seed=args.seed,
        batch_size=args.batch_size or max(args.jobs, 1),
        priors=args.priors,
    )
    if args.server:
        return _explore_remote(args, config)

    on_trial = (
        (lambda trial: print(_format_trial(trial), flush=True))
        if args.follow else None
    )
    journal = None
    if args.cache_dir or args.resume:
        journal = Journal(_journal_path(args, "explore"))
        if not args.resume:
            journal.clear()
    # A resumed run replays its journal, which only hits when the TPE
    # regenerates the original candidate stream — warm-start priors
    # (possibly saved by the very run being resumed) would perturb it.
    allow_priors = not args.resume

    if args.jobs > 1:
        # Distributed: trials run as jobs on a locally-hosted service
        # with one process shard per worker (memoization, coalescing,
        # and crash quarantine included).
        from .serve import LocalServiceHost, ServiceConfig

        host_config = ServiceConfig(
            shards=args.jobs,
            cache_dir=args.cache_dir,
            capacity=max(2 * args.jobs, 8),
        )
        with LocalServiceHost(host_config) as host:
            priors = (
                TransferPriors(host.service._cache)
                if allow_priors and host.service._cache is not None
                else None
            )
            outcome = api.run_exploration(
                config,
                evaluator=host.evaluator(config, journal=journal),
                on_trial=on_trial,
                priors=priors,
                trace=args.trace,
            )
    else:
        from .core.exploration import (
            SuiteDesignFactory,
            make_batch_evaluator,
            make_placement_objective,
        )

        telemetry = Telemetry()
        evaluator = None
        priors = None
        if journal is not None:
            objective = make_placement_objective(
                SuiteDesignFactory(config.design, config.scale),
                wl_weight=config.wl_weight,
            )
            cache = (
                ArtifactCache(args.cache_dir, telemetry=telemetry)
                if args.cache_dir else None
            )
            evaluator = make_batch_evaluator(
                objective, cache=cache, journal=journal
            )
            if allow_priors and cache is not None:
                priors = TransferPriors(cache)
        outcome = api.run_exploration(
            config, evaluator=evaluator, on_trial=on_trial, priors=priors,
            trace=args.trace,
        )
        if evaluator is not None:
            print(f"runtime: {telemetry.summary()}")

    report = outcome.report
    print(
        f"explored {report.evaluations} configurations; "
        f"best objective {report.best_loss:.3f}%"
    )
    _print_exploration_params(report.params.to_dict(), args.out)
    return 0


def cmd_suite(args) -> int:
    from .evalkit import format_table2
    from .runtime import Telemetry

    telemetry = Telemetry()
    rows = api.suite(
        api.RunConfig(scale=args.scale, seed=args.seed, verify=args.verify),
        benchmarks=args.designs,
        trace=args.trace,
        progress=lambda r: print(
            f"  {r.benchmark:16s} {r.placer:16s} HOF {r.hof:6.2f} VOF {r.vof:6.2f}"
        ),
        jobs=args.jobs,
        cache=args.cache_dir,
        journal=_journal_path(args, "suite"),
        resume=args.resume,
        telemetry=telemetry,
    )
    print(format_table2(rows))
    print(f"runtime: {telemetry.summary()}")
    return 0


def cmd_report(args) -> int:
    from .obs.report import report_file

    print(report_file(args.trace, top=args.top))
    return 0


def cmd_verify(args) -> int:
    from . import obs
    from .verify import run_differential

    with obs.tracing(args.trace):
        report = run_differential(
            design=args.design,
            scale=args.scale,
            seed=args.seed,
            quick=args.quick,
        )
    print(report.summary())
    if args.out:
        report.to_json(args.out)
        print(f"wrote {args.out}")
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    import asyncio

    from . import obs
    from .serve import HttpServer, PlacementService, ServiceConfig

    weights = {}
    for spec in args.client_weight or []:
        client, sep, weight = spec.partition("=")
        if not sep or not client:
            print(f"error: --client-weight wants CLIENT=W, got {spec!r}",
                  file=sys.stderr)
            return 1
        try:
            weights[client] = int(weight)
        except ValueError:
            print(f"error: --client-weight weight must be an int: {spec!r}",
                  file=sys.stderr)
            return 1

    async def _serve() -> None:
        service = PlacementService(
            ServiceConfig(
                workers=args.workers,
                capacity=args.capacity,
                cache_dir=args.cache_dir,
                default_timeout=args.timeout,
                shards=args.shards,
                client_weights=weights or None,
            )
        )
        await service.start()
        server = HttpServer(service, host=args.host, port=args.port)
        host, port = await server.start()
        mode = (f"{args.shards} process shards" if args.shards
                else f"{args.workers} thread workers")
        print(f"serving placements on http://{host}:{port} ({mode})",
              flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            print("draining...", flush=True)
            await server.close()
            await service.stop()
            counts = service.counts
            print(
                f"served {counts['submitted']} jobs "
                f"({counts['done']} done, {counts['failed']} failed, "
                f"{counts['cancelled']} cancelled, "
                f"{counts['cache_hits']} cache hits)"
            )

    with obs.tracing(args.trace):
        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            pass
    return 0


def _format_event(event) -> str:
    """One ``repro submit --follow`` line per JobEvent."""
    if event.kind == "state":
        return f"[{event.seq}] state {event.state}"
    progress = event.progress
    metrics = " ".join(
        f"{name}={value:.6g}" for name, value in sorted(progress.metrics.items())
    )
    line = f"[{event.seq}] progress {progress.stage} step={progress.step}"
    return f"{line} {metrics}" if metrics else line


def cmd_submit(args) -> int:
    from .serve import HttpServiceClient, QueueFullError

    config = api.RunConfig(
        scale=args.scale,
        seed=args.seed,
        placement=PlacementParams(max_iters=args.max_iters),
        mode=args.mode,
    )
    client = HttpServiceClient(args.host, args.port)
    try:
        job = client.submit(
            args.design,
            flow=args.flow,
            config=config,
            route=args.route,
            timeout=args.timeout,
            priority=args.priority,
            client_id=args.client_id,
        )
    except QueueFullError as exc:
        print(f"rejected: {exc}", file=sys.stderr)
        return 2
    print(f"{job['id']} {job['state']}")
    if not (args.wait or args.follow):
        return 0
    if job["state"] not in ("done", "failed", "cancelled"):
        if args.follow:
            for event in client.follow(job["id"], timeout=args.wait_timeout):
                print(_format_event(event), flush=True)
            job = client.status(job["id"])
        else:
            job = client.wait(job["id"], timeout=args.wait_timeout)
    print(f"{job['id']} {job['state']}"
          + (" (cache hit)" if job["cache_hit"] else ""))
    if job["state"] == "done":
        print(json.dumps(job["result"], indent=2))
        return 0
    print(f"error: {job['error']}", file=sys.stderr)
    return 1


def cmd_jobs(args) -> int:
    from .serve import HttpServiceClient, ServeError

    client = HttpServiceClient(args.host, args.port)
    if args.cancel:
        try:
            job = client.cancel(args.cancel)
        except ServeError as exc:  # unknown job / already terminal
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"{job['id']} {job['state']}")
        return 0
    if args.events:
        try:
            events = client.events(args.events)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for event in events:
            print(_format_event(event))
        if not events:
            print("no events")
        return 0
    if args.job:
        try:
            job = client.status(args.job)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(job, indent=2))
        return 0
    jobs = client.jobs(args.state)
    for job in jobs:
        extra = " (cache hit)" if job["cache_hit"] else ""
        print(f"{job['id']:10s} {job['state']:10s} "
              f"{job['request']['design']} {job['request']['flow']}{extra}")
    if not jobs:
        print("no jobs")
    return 0


def cmd_eco(args) -> int:
    handlers = {
        "run": _eco_run,
        "open": _eco_open,
        "sessions": _eco_sessions,
        "show": _eco_show,
        "delta": _eco_delta,
        "close": _eco_close,
    }
    return handlers[args.eco_command](args)


def _format_eco_step(summary: dict) -> str:
    verify = summary.get("verify")
    verify_text = (
        "" if verify is None
        else f"  verify {'OK' if verify['ok'] else 'FAIL'}"
        f" ({verify['errors']}E/{verify['warnings']}W)"
    )
    return (
        f"v{summary['version']:<3d} {summary['kind']:16s} "
        f"HPWL {summary['hpwl']:.6g}  HOF {summary['hof']:.3f}%  "
        f"VOF {summary['vof']:.3f}%  "
        f"dirty {summary['dirty_cells']} cells / {summary['dirty_nets']} nets  "
        f"{summary['seconds'].get('total', 0.0):.3f}s{verify_text}"
    )


def _eco_run(args) -> int:
    from . import obs
    from .eco import EcoSession
    from .runtime import ArtifactCache

    config = api.RunConfig(scale=args.scale, seed=args.seed)
    cache = ArtifactCache(args.cache_dir) if args.cache_dir else None
    deltas = []
    if args.deltas:
        with open(args.deltas) as f:
            deltas = json.load(f)
        if not isinstance(deltas, list):
            print("error: --deltas file must hold a JSON list", file=sys.stderr)
            return 1
    with obs.tracing(args.trace):
        session = EcoSession(args.design, config=config, cache=cache)
        base = session.start()
        print(_format_eco_step(base.to_summary()))
        incremental = 0.0
        ok = True
        for payload in deltas:
            step = session.apply(payload, verify=args.verify)
            summary = step.to_summary()
            print(_format_eco_step(summary))
            incremental += summary["seconds"]["total"]
            if summary["verify"] is not None and not summary["verify"]["ok"]:
                ok = False
    cold = sum(base.seconds.get(k, 0.0) for k in ("place", "route"))
    if deltas:
        per_delta = incremental / len(deltas)
        print(
            f"{len(deltas)} deltas in {incremental:.3f}s "
            f"({per_delta:.3f}s each; cold run was {cold:.3f}s"
            + (f", {cold / per_delta:.1f}x speedup)" if per_delta > 0 else ")")
        )
    return 0 if ok else 1


def _eco_open(args) -> int:
    from .serve import HttpServiceClient

    config = api.RunConfig(scale=args.scale, seed=args.seed)
    client = HttpServiceClient(args.host, args.port)
    session = client.create_session(args.design, config=config, verify=args.verify)
    print(f"{session['id']} {session['state']}")
    if not args.wait:
        return 0
    session = client.wait_session(session["id"], timeout=args.wait_timeout)
    print(f"{session['id']} {session['state']}")
    if session["state"] != "ready":
        print(f"error: {session.get('error')}", file=sys.stderr)
        return 1
    print(json.dumps(session["baseline"], indent=2))
    return 0


def _eco_sessions(args) -> int:
    from .serve import HttpServiceClient

    sessions = HttpServiceClient(args.host, args.port).sessions()
    for session in sessions:
        print(
            f"{session['id']:10s} {session['state']:12s} "
            f"{session['request']['design']} v{session['version']} "
            f"({len(session['deltas'])} deltas)"
        )
    if not sessions:
        print("no sessions")
    return 0


def _eco_show(args) -> int:
    from .serve import HttpServiceClient, ServeError

    try:
        session = HttpServiceClient(args.host, args.port).session(args.session)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(session, indent=2))
    return 0


def _eco_delta(args) -> int:
    from .serve import HttpServiceClient, ServeError

    if bool(args.payload) == bool(args.payload_file):
        print("error: provide exactly one of --json or --file", file=sys.stderr)
        return 1
    if args.payload_file:
        with open(args.payload_file) as f:
            payload = json.load(f)
    else:
        payload = json.loads(args.payload)
    client = HttpServiceClient(args.host, args.port)
    try:
        record = client.submit_delta(args.session, payload)
    except (ServeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{record['id']} {record['state']}")
    if not args.wait:
        return 0
    import time

    deadline = (None if args.wait_timeout is None
                else time.monotonic() + args.wait_timeout)
    while record["state"] in ("queued", "running"):
        if deadline is not None and time.monotonic() >= deadline:
            print(f"error: delta {record['id']} still {record['state']}",
                  file=sys.stderr)
            return 1
        time.sleep(0.25)
        record = client.delta(args.session, record["id"])
    print(f"{record['id']} {record['state']}")
    if record["state"] != "done":
        print(f"error: {record.get('error')}", file=sys.stderr)
        return 1
    print(_format_eco_step(record["result"]))
    return 0


def _eco_close(args) -> int:
    from .serve import HttpServiceClient, ServeError

    try:
        session = HttpServiceClient(args.host, args.port).close_session(args.session)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"{session['id']} {session['state']}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "kernels", None):
        kernels.use(args.kernels)
    handlers = {
        "generate": cmd_generate,
        "ingest": cmd_ingest,
        "place": cmd_place,
        "route": cmd_route,
        "explore": cmd_explore,
        "suite": cmd_suite,
        "report": cmd_report,
        "verify": cmd_verify,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "jobs": cmd_jobs,
        "eco": cmd_eco,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
