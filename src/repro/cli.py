"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate``  — synthesize a suite benchmark and save it (Bookshelf).
* ``place``     — place a design (puffer / wirelength / replace /
  commercial flows) and save the result.
* ``route``     — route a placed design and report HOF/VOF/WL.
* ``explore``   — run the strategy exploration on a small design.
* ``suite``     — the Table-II comparison across the benchmark suite.
"""

from __future__ import annotations

import argparse
import json
import sys

from .baselines import (
    place_commercial_like,
    place_replace_like,
    place_wirelength_driven,
)
from .benchgen import make_design, suite_names
from .core import PufferPlacer
from .netlist import check_legal, load_design, save_design
from .placer import PlacementParams
from .router import GlobalRouter

FLOWS = {
    "puffer": lambda design, placement: PufferPlacer(
        design, placement=placement
    ).run(),
    "wirelength": place_wirelength_driven,
    "replace": place_replace_like,
    "commercial": place_commercial_like,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PUFFER routability-driven placement (DAC 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="synthesize a suite benchmark")
    generate.add_argument("design", choices=suite_names())
    generate.add_argument("--scale", type=float, default=0.004)
    generate.add_argument("--out", required=True, help="output directory")

    place = sub.add_parser("place", help="place a design")
    place.add_argument("design", choices=suite_names())
    place.add_argument("--scale", type=float, default=0.004)
    place.add_argument("--flow", choices=sorted(FLOWS), default="puffer")
    place.add_argument("--max-iters", type=int, default=900)
    place.add_argument("--out", help="directory to save the placed design")
    place.add_argument("--route", action="store_true", help="evaluate with the router")

    route = sub.add_parser("route", help="route a saved placement")
    route.add_argument("directory")
    route.add_argument("name")

    explore = sub.add_parser("explore", help="strategy exploration (Sec. III-C)")
    explore.add_argument("--design", default="OR1200", choices=suite_names())
    explore.add_argument("--scale", type=float, default=0.008)
    explore.add_argument("--budget", type=int, default=12)
    explore.add_argument("--out", help="write the explored parameters as JSON")
    _add_runtime_args(explore)

    suite = sub.add_parser("suite", help="Table-II comparison")
    suite.add_argument("--scale", type=float, default=0.004)
    suite.add_argument(
        "--designs", nargs="*", default=None, help="subset of benchmarks"
    )
    suite.add_argument(
        "--seed", type=int, default=0, help="benchmark-generation seed offset"
    )
    _add_runtime_args(suite)
    return parser


def _add_runtime_args(parser) -> None:
    """The shared ``repro.runtime`` execution flags."""
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = inline serial execution)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="artifact-cache directory; reruns reuse finished work",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from the checkpoint journal of an interrupted run",
    )
    parser.add_argument(
        "--journal", default=None,
        help="checkpoint journal path (default: <cache-dir or "
        f"{DEFAULT_RUNTIME_DIR}>/<command>.journal)",
    )


DEFAULT_RUNTIME_DIR = ".repro_runtime"


def _journal_path(args, command: str) -> str:
    import os

    if args.journal:
        return args.journal
    root = args.cache_dir or DEFAULT_RUNTIME_DIR
    return os.path.join(root, f"{command}.journal")


def cmd_generate(args) -> int:
    design = make_design(args.design, args.scale)
    save_design(design, args.out)
    print(f"wrote {design} to {args.out}")
    return 0


def cmd_place(args) -> int:
    design = make_design(args.design, args.scale)
    placement = PlacementParams(max_iters=args.max_iters)
    result = FLOWS[args.flow](design, placement)
    legality = check_legal(design)
    print(f"{args.flow}: HPWL {design.hpwl():.6g}, legal={legality.ok}")
    if args.route:
        report = GlobalRouter(design).run()
        print(report.summary())
    if args.out:
        save_design(design, args.out)
        print(f"saved to {args.out}")
    return 0 if legality.ok else 1


def cmd_route(args) -> int:
    design = load_design(args.directory, args.name)
    report = GlobalRouter(design).run()
    print(report.summary())
    return 0


def cmd_explore(args) -> int:
    from .core.exploration import (
        SuiteDesignFactory,
        make_batch_evaluator,
        make_placement_objective,
        strategy_exploration,
    )
    from .runtime import ArtifactCache, Journal, TaskExecutor, Telemetry

    objective = make_placement_objective(
        SuiteDesignFactory(args.design, args.scale)
    )

    telemetry = Telemetry()
    evaluator = None
    batch_size = 1
    if args.jobs > 1 or args.cache_dir or args.resume:
        journal = Journal(_journal_path(args, "explore"))
        if not args.resume:
            journal.clear()
        cache = (
            ArtifactCache(args.cache_dir, telemetry=telemetry)
            if args.cache_dir
            else None
        )
        executor = (
            TaskExecutor(jobs=args.jobs, telemetry=telemetry)
            if args.jobs > 1
            else None
        )
        evaluator = make_batch_evaluator(
            objective, executor=executor, cache=cache, journal=journal
        )
        batch_size = max(args.jobs, 1)

    report = strategy_exploration(
        objective,
        global_evals=args.budget,
        group_evals=max(args.budget // 3, 3),
        patience=max(args.budget // 3, 3),
        max_group_rounds=1,
        rng=7,
        batch_size=batch_size,
        evaluator=evaluator,
    )
    if evaluator is not None:
        print(f"runtime: {telemetry.summary()}")
    print(
        f"explored {report.evaluations} configurations; "
        f"best objective {report.best_loss:.3f}%"
    )
    values = {
        name: getattr(report.params, name)
        for name in (
            "alpha_local_cg", "alpha_local_pin", "alpha_around_cg",
            "alpha_around_pin", "alpha_pin_cg", "beta", "mu", "zeta",
            "pu_low", "pu_high", "xi", "tau", "eta", "theta",
            "kernel_size", "legalizer",
        )
    }
    print(json.dumps(values, indent=2))
    if args.out:
        with open(args.out, "w") as f:
            json.dump(values, f, indent=2)
    return 0


def cmd_suite(args) -> int:
    from .evalkit import SuiteRunConfig, format_table2, run_suite
    from .runtime import Telemetry

    config = SuiteRunConfig(
        scale=args.scale, benchmarks=args.designs, seed=args.seed
    )
    telemetry = Telemetry()
    rows = run_suite(
        config,
        progress=lambda r: print(
            f"  {r.benchmark:16s} {r.placer:16s} HOF {r.hof:6.2f} VOF {r.vof:6.2f}"
        ),
        jobs=args.jobs,
        cache=args.cache_dir,
        journal=_journal_path(args, "suite"),
        resume=args.resume,
        telemetry=telemetry,
    )
    print(format_table2(rows))
    print(f"runtime: {telemetry.summary()}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "place": cmd_place,
        "route": cmd_route,
        "explore": cmd_explore,
        "suite": cmd_suite,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
