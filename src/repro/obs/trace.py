"""The tracer: hierarchical spans, typed metrics, and trace sinks.

A :class:`Tracer` turns a run of the flow into an append-only stream of
small JSON-serializable *records*:

* ``span`` records — one per closed :class:`Span`, carrying the span
  name, a tracer-unique id, the parent span id (hierarchy), the
  monotonic start offset, the duration, and free-form attributes.
* ``event`` records — instantaneous points (e.g. the runtime telemetry
  events merged in by :class:`repro.runtime.Telemetry`).
* ``metric`` records — final aggregates of every typed instrument
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram`), emitted once
  when the tracer closes so hot-loop updates never touch a sink.

Records go to a bounded in-memory ring buffer (always) and to optional
sinks such as :class:`JsonlSink`.  The module also defines
:class:`NullTracer`, whose spans and instruments are shared no-op
singletons — the disabled path costs one attribute lookup and one call,
so uninstrumented runs pay ~nothing.

Tracers are single-threaded by design: the flow, the suite driver, and
the executor's scheduling loop all run on one thread.  Worker
*processes* never share the parent's tracer: a forked child that
inherits an installed tracer (and its open sink files) is muted — its
records are dropped instead of interleaving into the parent's stream.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque


class _NoopSpan:
    """Shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


class _NoopInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, value: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NOOP_SPAN = _NoopSpan()
NOOP_INSTRUMENT = _NoopInstrument()


class NullTracer:
    """The default tracer: accepts everything, records nothing."""

    enabled = False

    def span(self, name: str, **attrs) -> _NoopSpan:
        return NOOP_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def counter(self, name: str) -> _NoopInstrument:
        return NOOP_INSTRUMENT

    def gauge(self, name: str) -> _NoopInstrument:
        return NOOP_INSTRUMENT

    def histogram(self, name: str) -> _NoopInstrument:
        return NOOP_INSTRUMENT

    def close(self) -> None:
        pass


class Span:
    """One timed, named region of the flow (a context manager).

    Spans nest: entering pushes the span onto the tracer's stack, so
    spans (and events) opened inside record this span's id as their
    parent.  Timing uses the tracer's monotonic clock.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "t0", "attrs")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self.t0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer._next_id()
        self.parent_id = tracer._current_id()
        tracer._stack.append(self)
        self.t0 = tracer.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        duration = tracer.now() - self.t0
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # tolerate out-of-order exits
            stack.remove(self)
        record = {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "t0": round(self.t0, 6),
            "dur": round(duration, 6),
        }
        if exc_type is not None:
            record["error"] = f"{exc_type.__name__}: {exc}"
        if self.attrs:
            record["attrs"] = _clean(self.attrs)
        tracer._emit(record)
        return False


class Counter:
    """Monotonically increasing count (e.g. maze-router rip-ups)."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, value: float = 1.0) -> None:
        self.value += value

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-value instrument (e.g. current overflow)."""

    kind = "gauge"
    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1

    def snapshot(self) -> dict:
        return {"value": self.value, "updates": self.updates}


class Histogram:
    """Streaming distribution summary (count/sum/min/max/mean).

    Aggregates in memory only; the distribution is written to the trace
    once, as a ``metric`` record, when the tracer closes — so observing
    inside a hot loop costs a few float operations and no I/O.
    """

    kind = "histogram"
    __slots__ = ("name", "count", "total", "lo", "hi")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.lo = None
        self.hi = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.lo is None or value < self.lo:
            self.lo = value
        if self.hi is None or value > self.hi:
            self.hi = value

    def snapshot(self) -> dict:
        mean = self.total / self.count if self.count else None
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.lo,
            "max": self.hi,
            "mean": mean,
        }


_INSTRUMENTS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Tracer:
    """Collects spans, events, and metrics from one run.

    Args:
        sinks: callables receiving each record dict (e.g. a
            :class:`JsonlSink`).
        ring_size: bound of the in-memory ring buffer (oldest records
            are dropped first).

    Example:
        >>> tracer = Tracer()
        >>> with tracer.span("flow", design="OR1200"):
        ...     with tracer.span("stage"):
        ...         tracer.counter("widgets").inc()
        >>> [r["name"] for r in tracer.ring]
        ['stage', 'flow']
    """

    enabled = True

    def __init__(self, sinks: list | None = None, ring_size: int = 4096) -> None:
        self.sinks = list(sinks or [])
        self.ring: deque = deque(maxlen=ring_size)
        self._born = time.perf_counter()
        self._ids = 0
        self._stack: list = []
        self._instruments: dict = {}
        self._closed = False
        self._pid = os.getpid()

    # -- clock / ids ---------------------------------------------------

    def now(self) -> float:
        """Monotonic seconds since the tracer was created."""
        return time.perf_counter() - self._born

    def _next_id(self) -> int:
        self._ids += 1
        return self._ids

    def _current_id(self) -> int:
        return self._stack[-1].span_id if self._stack else 0

    # -- recording -----------------------------------------------------

    def _emit(self, record: dict) -> None:
        # Fork safety: a worker forked while this tracer was installed
        # inherits both the tracer and its open sink files; letting the
        # child write would interleave buffered fragments into the
        # parent's JSONL stream.  Children keep their in-memory copy
        # but never touch the shared ring or sinks.
        if os.getpid() != self._pid:
            return
        self.ring.append(record)
        for sink in self.sinks:
            sink(record)

    def span(self, name: str, **attrs) -> Span:
        """Open a named span; use as a context manager."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous event under the current span."""
        record = {
            "type": "event",
            "name": name,
            "parent": self._current_id(),
            "t": round(self.now(), 6),
        }
        if attrs:
            record["attrs"] = _clean(attrs)
        self._emit(record)

    # -- instruments ---------------------------------------------------

    def _instrument(self, kind: str, name: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = _INSTRUMENTS[kind](name)
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise TypeError(
                f"instrument {name!r} is a {instrument.kind}, not a {kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._instrument("counter", name)

    def gauge(self, name: str) -> Gauge:
        return self._instrument("gauge", name)

    def histogram(self, name: str) -> Histogram:
        return self._instrument("histogram", name)

    def metrics(self) -> dict:
        """``name -> snapshot`` of every instrument so far."""
        return {
            name: dict(kind=inst.kind, **inst.snapshot())
            for name, inst in sorted(self._instruments.items())
        }

    # -- lifecycle -----------------------------------------------------

    def flush_metrics(self) -> None:
        """Emit one ``metric`` record per instrument (idempotent data)."""
        for name, inst in sorted(self._instruments.items()):
            record = {"type": "metric", "kind": inst.kind, "name": name}
            record.update(_clean(inst.snapshot()))
            self._emit(record)

    def close(self) -> None:
        """Flush metric aggregates and close every closable sink."""
        if self._closed:
            return
        self._closed = True
        self.flush_metrics()
        for sink in self.sinks:
            closer = getattr(sink, "close", None)
            if closer is not None:
                closer()


class JsonlSink:
    """Appends one compact JSON object per record to ``path``."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._file = open(self.path, "a")

    def __call__(self, record: dict) -> None:
        json.dump(record, self._file, separators=(",", ":"), default=_json_default)
        self._file.write("\n")

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


def read_trace(path: str) -> list:
    """Parse a JSONL trace file back into record dicts.

    Blank lines are skipped; a malformed line raises ``ValueError``
    naming the line number.
    """
    records = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{lineno}: bad trace line: {error}") from None
    return records


def _clean(attrs: dict) -> dict:
    """JSON-safe copies of attribute values (numpy scalars included)."""
    return {key: _coerce(value) for key, value in attrs.items()}


def _coerce(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if item is not None:
        try:
            return item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    if isinstance(value, dict):
        return _clean(value)
    return str(value)


def _json_default(value):
    return _coerce(value) if not isinstance(value, (list, tuple, dict)) else str(value)
