"""Flow-wide observability: spans, metrics, and JSONL traces.

Every hot layer of the repo (placement iterations, padding rounds, the
router, legalization, TPE trials, runtime task lifecycles) narrates into
the *current tracer* through the module-level helpers here:

    from repro import obs

    with obs.span("gp/iteration", i=k) as sp:
        ...
        sp.set(hpwl=hpwl, overflow=overflow)
    obs.counter("maze/calls").inc()
    obs.histogram("gp/overflow").observe(overflow)

The default tracer is a :class:`NullTracer` whose spans and instruments
are shared no-op singletons, so uninstrumented callers pay ~nothing.
Enable tracing by installing a real :class:`Tracer` — most conveniently
through :func:`tracing`, which the :mod:`repro.api` facade and the CLI's
``--trace PATH`` flag drive:

    with obs.tracing("run.jsonl"):
        PufferPlacer(design).run()

    records = obs.read_trace("run.jsonl")

``repro report run.jsonl`` (or :func:`repro.obs.report.render_report`)
renders the per-stage time/metric breakdown of a saved trace.
"""

from __future__ import annotations

from contextlib import contextmanager

from .trace import (
    Counter,
    Gauge,
    Histogram,
    JsonlSink,
    NullTracer,
    Span,
    Tracer,
    read_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "NullTracer",
    "Span",
    "Tracer",
    "counter",
    "event",
    "gauge",
    "get_tracer",
    "histogram",
    "is_enabled",
    "read_trace",
    "set_tracer",
    "span",
    "tracing",
]

#: The process-wide current tracer (a no-op by default).
_TRACER = NullTracer()


def get_tracer():
    """The currently installed tracer (:class:`NullTracer` by default)."""
    return _TRACER


def set_tracer(tracer):
    """Install ``tracer`` as current (``None`` restores the no-op).

    Returns:
        The installed tracer.
    """
    global _TRACER
    _TRACER = tracer if tracer is not None else NullTracer()
    return _TRACER


def is_enabled() -> bool:
    """``True`` when a real (recording) tracer is installed."""
    return _TRACER.enabled


def span(name: str, **attrs):
    """Open a span on the current tracer (no-op when tracing is off)."""
    return _TRACER.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Record an instantaneous event on the current tracer."""
    _TRACER.event(name, **attrs)


def counter(name: str):
    """The named counter of the current tracer."""
    return _TRACER.counter(name)


def gauge(name: str):
    """The named gauge of the current tracer."""
    return _TRACER.gauge(name)


def histogram(name: str):
    """The named histogram of the current tracer."""
    return _TRACER.histogram(name)


@contextmanager
def tracing(target, ring_size: int = 4096):
    """Scoped tracer installation.

    Args:
        target: ``None`` (keep whatever tracer is current — makes the
            block a no-op wrapper), a path (create a :class:`Tracer`
            with a :class:`JsonlSink`, close it on exit), or an existing
            tracer (install for the block; the caller keeps ownership
            and must close it).
        ring_size: ring-buffer bound for path targets.

    Yields:
        The tracer active inside the block.
    """
    if target is None:
        yield _TRACER
        return
    owned = isinstance(target, (str, bytes)) or hasattr(target, "__fspath__")
    tracer = (
        Tracer(sinks=[JsonlSink(target)], ring_size=ring_size) if owned else target
    )
    previous = _TRACER
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        if owned:
            tracer.close()
