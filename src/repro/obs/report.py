"""Render a saved JSONL trace as a per-stage breakdown.

Backs the ``repro report <trace.jsonl>`` CLI command: spans are grouped
by name (in first-occurrence order, which follows the flow), with
count / total / mean / max wall-clock columns, followed by the metric
aggregates and an event tally.
"""

from __future__ import annotations

from .trace import read_trace


def summarize_trace(records: list) -> dict:
    """Aggregate raw trace records.

    Returns:
        ``{"spans": [...], "metrics": [...], "events": [...],
        "errors": [...], "records": N}`` where each span row is
        ``{"name", "count", "total", "mean", "max"}`` in
        first-occurrence order.
    """
    spans: dict = {}
    events: dict = {}
    metrics = []
    errors = []
    for record in records:
        kind = record.get("type")
        if kind == "span":
            row = spans.setdefault(
                record["name"], {"name": record["name"], "count": 0, "total": 0.0, "max": 0.0}
            )
            row["count"] += 1
            row["total"] += record.get("dur", 0.0)
            row["max"] = max(row["max"], record.get("dur", 0.0))
            if "error" in record:
                errors.append({"name": record["name"], "error": record["error"]})
        elif kind == "event":
            events[record["name"]] = events.get(record["name"], 0) + 1
        elif kind == "metric":
            metrics.append(record)
    span_rows = []
    for row in spans.values():
        row["mean"] = row["total"] / row["count"]
        span_rows.append(row)
    return {
        "spans": span_rows,
        "metrics": metrics,
        "events": sorted(events.items()),
        "errors": errors,
        "records": len(records),
    }


def render_report(records: list) -> str:
    """Human-readable report of a record list (see module docstring)."""
    summary = summarize_trace(records)
    lines = [f"TRACE REPORT — {summary['records']} records"]

    if summary["spans"]:
        lines.append("")
        lines.append(
            f"{'span':<34} {'count':>7} {'total s':>10} {'mean s':>10} {'max s':>10}"
        )
        for row in summary["spans"]:
            lines.append(
                f"{row['name']:<34} {row['count']:>7d} {row['total']:>10.4f} "
                f"{row['mean']:>10.4f} {row['max']:>10.4f}"
            )

    if summary["metrics"]:
        lines.append("")
        lines.append(f"{'metric':<34} {'kind':>9}  value")
        for record in summary["metrics"]:
            lines.append(
                f"{record['name']:<34} {record['kind']:>9}  "
                f"{_metric_value(record)}"
            )

    if summary["events"]:
        lines.append("")
        lines.append("events")
        for name, count in summary["events"]:
            lines.append(f"  {name:<32} x {count}")

    if summary["errors"]:
        lines.append("")
        lines.append("spans that exited with an error")
        for item in summary["errors"]:
            lines.append(f"  {item['name']}: {item['error']}")

    return "\n".join(lines)


def report_file(path: str) -> str:
    """Read ``path`` and render its report (the CLI entry point)."""
    return render_report(read_trace(path))


def _metric_value(record: dict) -> str:
    if record["kind"] == "counter":
        return _num(record.get("value"))
    if record["kind"] == "gauge":
        return f"{_num(record.get('value'))} ({record.get('updates', 0)} updates)"
    return (
        f"count={record.get('count', 0)} mean={_num(record.get('mean'))} "
        f"min={_num(record.get('min'))} max={_num(record.get('max'))} "
        f"sum={_num(record.get('sum'))}"
    )


def _num(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
