"""Render a saved JSONL trace as a per-stage breakdown.

Backs the ``repro report <trace.jsonl>`` CLI command: spans are grouped
by name (in first-occurrence order, which follows the flow), with
count / total / mean / max wall-clock columns and each stage's share of
the root wall-clock, followed by the metric aggregates and an event
tally.  ``--top N`` keeps only the N most expensive stages.

Traces that contain ``runtime/ipc/*`` spans (shared-memory publish and
attach, worker-payload pickling) additionally get a
serialization-vs-compute split, so the cost of moving data to workers
is visible next to the cost of placing cells.
"""

from __future__ import annotations

from .trace import read_trace

IPC_PREFIX = "runtime/ipc/"


def summarize_trace(records: list, top: int | None = None) -> dict:
    """Aggregate raw trace records.

    Args:
        records: decoded trace records.
        top: keep only the ``top`` span rows with the largest totals
            (``None`` keeps every row).

    Returns:
        ``{"spans": [...], "span_count": N, "root_total": s,
        "ipc": {...} | None, "metrics": [...], "events": [...],
        "errors": [...], "records": N}`` where each span row is
        ``{"name", "count", "total", "mean", "max", "pct"}`` in
        first-occurrence order (``pct`` is percent of the root spans'
        total wall-clock).
    """
    spans: dict = {}
    events: dict = {}
    metrics = []
    errors = []
    root_total = 0.0
    ipc_total = 0.0
    ipc_bytes = 0
    for record in records:
        kind = record.get("type")
        if kind == "span":
            row = spans.setdefault(
                record["name"], {"name": record["name"], "count": 0, "total": 0.0, "max": 0.0}
            )
            dur = record.get("dur", 0.0)
            row["count"] += 1
            row["total"] += dur
            row["max"] = max(row["max"], dur)
            if record.get("parent", 0) == 0:
                root_total += dur
            if record["name"].startswith(IPC_PREFIX):
                ipc_total += dur
                ipc_bytes += int((record.get("attrs") or {}).get("bytes", 0) or 0)
            if "error" in record:
                errors.append({"name": record["name"], "error": record["error"]})
        elif kind == "event":
            events[record["name"]] = events.get(record["name"], 0) + 1
        elif kind == "metric":
            metrics.append(record)
    span_rows = []
    for row in spans.values():
        row["mean"] = row["total"] / row["count"]
        row["pct"] = 100.0 * row["total"] / root_total if root_total > 0 else 0.0
        span_rows.append(row)
    span_count = len(span_rows)
    if top is not None and top >= 0 and span_count > top:
        # Keep the N most expensive stages but preserve flow order.
        kept = sorted(span_rows, key=lambda r: r["total"], reverse=True)[:top]
        keep_names = {r["name"] for r in kept}
        span_rows = [r for r in span_rows if r["name"] in keep_names]
    ipc = None
    if ipc_total > 0.0:
        compute = max(root_total - ipc_total, 0.0)
        ipc = {
            "serialization": ipc_total,
            "compute": compute,
            "bytes": ipc_bytes,
            "pct": 100.0 * ipc_total / root_total if root_total > 0 else 0.0,
        }
    return {
        "spans": span_rows,
        "span_count": span_count,
        "root_total": root_total,
        "ipc": ipc,
        "metrics": metrics,
        "events": sorted(events.items()),
        "errors": errors,
        "records": len(records),
    }


def render_report(records: list, top: int | None = None) -> str:
    """Human-readable report of a record list (see module docstring)."""
    summary = summarize_trace(records, top=top)
    lines = [f"TRACE REPORT — {summary['records']} records"]

    if summary["spans"]:
        lines.append("")
        lines.append(
            f"{'span':<34} {'count':>7} {'total s':>10} {'mean s':>10} "
            f"{'max s':>10} {'% root':>7}"
        )
        for row in summary["spans"]:
            lines.append(
                f"{row['name']:<34} {row['count']:>7d} {row['total']:>10.4f} "
                f"{row['mean']:>10.4f} {row['max']:>10.4f} {row['pct']:>6.1f}%"
            )
        hidden = summary["span_count"] - len(summary["spans"])
        if hidden > 0:
            lines.append(f"... {hidden} more spans (raise --top to show)")

    if summary["ipc"] is not None:
        ipc = summary["ipc"]
        lines.append("")
        lines.append(
            f"serialization vs compute: {ipc['serialization']:.4f} s ipc "
            f"({ipc['pct']:.1f}% of root) vs {ipc['compute']:.4f} s compute, "
            f"{ipc['bytes']} payload bytes"
        )

    if summary["metrics"]:
        lines.append("")
        lines.append(f"{'metric':<34} {'kind':>9}  value")
        for record in summary["metrics"]:
            lines.append(
                f"{record['name']:<34} {record['kind']:>9}  "
                f"{_metric_value(record)}"
            )

    if summary["events"]:
        lines.append("")
        lines.append("events")
        for name, count in summary["events"]:
            lines.append(f"  {name:<32} x {count}")

    if summary["errors"]:
        lines.append("")
        lines.append("spans that exited with an error")
        for item in summary["errors"]:
            lines.append(f"  {item['name']}: {item['error']}")

    return "\n".join(lines)


def report_file(path: str, top: int | None = None) -> str:
    """Read ``path`` and render its report (the CLI entry point)."""
    return render_report(read_trace(path), top=top)


def _metric_value(record: dict) -> str:
    if record["kind"] == "counter":
        return _num(record.get("value"))
    if record["kind"] == "gauge":
        return f"{_num(record.get('value'))} ({record.get('updates', 0)} updates)"
    return (
        f"count={record.get('count', 0)} mean={_num(record.get('mean'))} "
        f"min={_num(record.get('min'))} max={_num(record.get('max'))} "
        f"sum={_num(record.get('sum'))}"
    )


def _num(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
