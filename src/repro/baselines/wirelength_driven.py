"""Plain wirelength-driven flow (no routability optimization).

The ablation baseline: the same ePlace engine and Abacus legalizer as
PUFFER, with the routability optimizer disabled.  Any routability gain of
the other flows is measured against this.
"""

from __future__ import annotations

import time

from ..legalizer import legalize_abacus
from ..netlist.design import Design
from ..placer import GlobalPlacer, PlacementParams
from .common import BaselineResult


def place_wirelength_driven(
    design: Design, placement: PlacementParams | None = None
) -> BaselineResult:
    """Global placement + legalization, wirelength-only objective."""
    start = time.perf_counter()
    gp = GlobalPlacer(design, placement or PlacementParams()).run()
    legal = legalize_abacus(design)
    return BaselineResult(
        placer="wirelength",
        hpwl=design.hpwl(),
        runtime=time.perf_counter() - start,
        global_place=gp,
        notes={"legal_displacement": legal.total_displacement},
    )
