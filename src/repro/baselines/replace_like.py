"""A RePlAce-style routability-driven baseline [5].

RePlAce's routability mode estimates congestion once cells have spread,
inflates cells in congested regions by a super-linear function of the
routing utilization, and resumes placement with the inflated areas.
Unlike PUFFER there is no incremental multi-round padding with recycling,
no multi-feature formula, and — crucially — the inflation is *dropped at
legalization*: cells legalize at their native widths, so the spreading
effect partially collapses back (the inconsistency PUFFER's Sec. III-D
fixes).

This reimplementation runs on the same engine, estimator, and legalizer
as PUFFER so the comparison isolates the algorithmic differences.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.congestion import CongestionEstimator, EstimatorParams
from ..legalizer import legalize_abacus
from ..netlist.design import Design
from ..placer import GlobalPlacer, PlacementParams
from ..placer.engine import PlacerState
from .common import BaselineResult


class ReplaceLikeParams:
    """Knobs of the RePlAce-style flow.

    Attributes:
        trigger_overflow: density overflow at which inflation happens.
        exponent: utilization exponent of the inflation ratio (RePlAce
            uses ~2.33).
        max_ratio: per-round cap on the cell-area inflation ratio.
        rounds: inflation rounds (RePlAce applies a small number of
            estimate-inflate-replace iterations).
        min_gap: engine iterations between rounds.
        area_budget: per-round inflation area budget as a fraction of
            the white space (RePlAce bounds its inflation per iteration).
    """

    def __init__(
        self,
        trigger_overflow: float = 0.20,
        exponent: float = 2.33,
        max_ratio: float = 2.5,
        rounds: int = 3,
        min_gap: int = 20,
        area_budget: float = 0.10,
    ) -> None:
        self.trigger_overflow = trigger_overflow
        self.exponent = exponent
        self.max_ratio = max_ratio
        self.rounds = rounds
        self.min_gap = min_gap
        self.area_budget = area_budget


class _InflationHook:
    """Engine hook applying RePlAce-style one-shot cell inflation."""

    def __init__(self, design: Design, params: ReplaceLikeParams) -> None:
        self.design = design
        self.params = params
        # RePlAce's estimator has no detour expansion; disable ours.
        self.estimator = CongestionEstimator(
            design, EstimatorParams(expand=False)
        )
        self.calls = 0
        self.last_iteration = -10**9
        self.ratio = np.ones(design.num_cells)
        self._movable = design.movable & ~design.is_macro

    def _whitespace(self) -> float:
        design = self.design
        fixed = ~design.movable
        fixed_area = float((design.w[fixed] * design.h[fixed]).sum())
        return max(design.die.area - fixed_area - design.movable_area, 1e-9)

    def __call__(self, state: PlacerState) -> bool:
        if self.calls >= self.params.rounds:
            return False
        if state.overflow >= self.params.trigger_overflow:
            return False
        if state.iteration - self.last_iteration < self.params.min_gap:
            return False
        self.calls += 1
        self.last_iteration = state.iteration

        cmap, _topologies, _demand = self.estimator.estimate()
        grid = cmap.grid
        gx, gy = grid.gcell_of(self.design.x, self.design.y)
        # Per-cell routing utilization: worst direction, >= 0.
        util_h = cmap.dmd_h / np.maximum(grid.cap_h, 1.0)
        util_v = cmap.dmd_v / np.maximum(grid.cap_v, 1.0)
        util = np.maximum(util_h[gx, gy], util_v[gx, gy])
        round_ratio = np.clip(
            np.maximum(util, 1.0) ** self.params.exponent,
            1.0,
            self.params.max_ratio,
        )
        # Per-round inflation budget (fraction of the white space).
        extra = (round_ratio - 1.0) * self.design.w * self.design.h
        extra[~self._movable] = 0.0
        whitespace = self._whitespace()
        budget = self.params.area_budget * whitespace
        total_extra = float(extra.sum())
        if total_extra > budget and total_extra > 0:
            round_ratio = 1.0 + (round_ratio - 1.0) * (budget / total_extra)
        self.ratio = np.where(self._movable, self.ratio * round_ratio, 1.0)
        w_eff = self.design.w * np.where(self._movable, self.ratio, 1.0)
        state.set_density_sizes(w_eff, self.design.h.copy())
        return True


def place_replace_like(
    design: Design,
    placement: PlacementParams | None = None,
    params: ReplaceLikeParams | None = None,
) -> BaselineResult:
    """RePlAce-style routability-driven placement + plain legalization."""
    start = time.perf_counter()
    params = params or ReplaceLikeParams()
    hook = _InflationHook(design, params)
    gp = GlobalPlacer(design, placement or PlacementParams(), hooks=[hook]).run()
    # Inflation is not inherited: legalize at native widths.
    legal = legalize_abacus(design)
    return BaselineResult(
        placer="replace_like",
        hpwl=design.hpwl(),
        runtime=time.perf_counter() - start,
        global_place=gp,
        inflation_rounds=hook.calls,
        notes={
            "legal_displacement": legal.total_displacement,
            "mean_inflation": float(hook.ratio[hook._movable].mean()),
        },
    )
