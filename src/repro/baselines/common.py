"""Shared result type for the baseline placement flows."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..placer import GlobalPlaceResult


@dataclass
class BaselineResult:
    """Outcome of one baseline placement flow.

    Attributes:
        placer: flow name ("wirelength", "replace_like", ...).
        hpwl: legalized half-perimeter wirelength.
        runtime: end-to-end seconds.
        global_place: the engine's convergence record.
        inflation_rounds: congestion-driven size adjustments applied.
        notes: free-form per-flow diagnostics.
    """

    placer: str
    hpwl: float
    runtime: float
    global_place: GlobalPlaceResult
    inflation_rounds: int = 0
    notes: dict = field(default_factory=dict)
