"""Comparison flows: WL-driven, RePlAce-style, commercial substitute."""

from .commercial_like import CommercialLikeParams, place_commercial_like
from .common import BaselineResult
from .replace_like import ReplaceLikeParams, place_replace_like
from .wirelength_driven import place_wirelength_driven

__all__ = [
    "BaselineResult",
    "CommercialLikeParams",
    "ReplaceLikeParams",
    "place_commercial_like",
    "place_replace_like",
    "place_wirelength_driven",
]
