"""A commercial-tool substitute: global routing in the placement loop.

The paper compares against a leading commercial placer evaluated by its
own global router.  Commercial engines afford expensive feedback: they
re-run (a fast mode of) global routing during placement and allocate
white space from the *measured* congestion rather than a probabilistic
estimate.  This substitute reproduces that quality/runtime trade-off:

* after cells spread, it runs the full evaluation router
  (:class:`repro.router.GlobalRouter`) several times inside the loop,
* derives cell inflation from the measured overflow, blurred over a
  neighbourhood (white-space allocation), and
* inherits the final inflation into legalization.

Routing-in-the-loop makes it the slowest flow, mirroring Table II where
the commercial tool is ~2.7x slower than PUFFER at comparable
routability.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.ndimage import uniform_filter

from ..legalizer import legalize_abacus, padded_widths
from ..netlist.design import Design
from ..placer import GlobalPlacer, PlacementParams
from ..placer.engine import PlacerState
from ..router import GlobalRouter, RouterParams
from .common import BaselineResult


class CommercialLikeParams:
    """Knobs of the commercial-substitute flow.

    Attributes:
        trigger_overflow: density overflow enabling router feedback.
        rounds: router-in-the-loop feedback rounds.
        min_gap: engine iterations between rounds.
        gain: inflation width (database units) per unit overflow ratio.
        area_budget: per-round inflation area budget as a fraction of
            the white space.
        blur: white-space allocation neighbourhood (Gcells).
        inherit_theta: staircase parameter for legalization inheritance.
        router: parameters of the in-loop router (fewer RRR rounds than
            the final evaluation for speed, as a real tool's fast mode).
    """

    def __init__(
        self,
        trigger_overflow: float = 0.25,
        rounds: int = 3,
        min_gap: int = 15,
        gain: float = 2.0,
        area_budget: float = 0.08,
        blur: int = 3,
        inherit_theta: float = 4.0,
        router: RouterParams | None = None,
    ) -> None:
        self.trigger_overflow = trigger_overflow
        self.rounds = rounds
        self.min_gap = min_gap
        self.gain = gain
        self.area_budget = area_budget
        self.blur = blur
        self.inherit_theta = inherit_theta
        self.router = router or RouterParams(rrr_rounds=2, max_reroute_per_round=2500)


class _RouterFeedbackHook:
    """Engine hook: route, measure overflow, allocate white space."""

    def __init__(self, design: Design, params: CommercialLikeParams) -> None:
        self.design = design
        self.params = params
        self.calls = 0
        self.last_iteration = -10**9
        self.pad = np.zeros(design.num_cells)
        self._movable = design.movable & ~design.is_macro

    def _whitespace(self) -> float:
        design = self.design
        fixed = ~design.movable
        fixed_area = float((design.w[fixed] * design.h[fixed]).sum())
        return max(design.die.area - fixed_area - design.movable_area, 1e-9)

    def __call__(self, state: PlacerState) -> bool:
        if self.calls >= self.params.rounds:
            return False
        if state.overflow >= self.params.trigger_overflow:
            return False
        if state.iteration - self.last_iteration < self.params.min_gap:
            return False
        self.calls += 1
        self.last_iteration = state.iteration

        report = GlobalRouter(self.design, self.params.router).run()
        grid = report.grid
        util_h = report.demand.dmd_h / np.maximum(grid.cap_h, 1.0)
        util_v = report.demand.dmd_v / np.maximum(grid.cap_v, 1.0)
        util = np.maximum(util_h, util_v)
        # Inflate overflowed Gcells strongly and near-capacity ones
        # preemptively (a real tool's congestion screens do both).
        stress = np.maximum(util - 1.0, 0.0) + 0.4 * np.clip(util - 0.85, 0.0, 0.15)
        over = uniform_filter(stress, size=self.params.blur, mode="nearest")
        gx, gy = grid.gcell_of(self.design.x, self.design.y)
        add = self.params.gain * over[gx, gy]
        add[~self._movable] = 0.0
        # Per-round white-space-allocation budget.
        added_area = float((add * self.design.h).sum())
        budget = self.params.area_budget * self._whitespace()
        if added_area > budget and added_area > 0:
            add *= budget / added_area
        self.pad = np.where(self._movable, self.pad + add, 0.0)
        w_eff = self.design.w + self.pad
        state.set_density_sizes(w_eff, self.design.h.copy())
        return True


def place_commercial_like(
    design: Design,
    placement: PlacementParams | None = None,
    params: CommercialLikeParams | None = None,
) -> BaselineResult:
    """GR-in-the-loop placement with white-space-inherited legalization."""
    start = time.perf_counter()
    params = params or CommercialLikeParams()
    hook = _RouterFeedbackHook(design, params)
    gp = GlobalPlacer(design, placement or PlacementParams(), hooks=[hook]).run()
    widths = padded_widths(
        design, hook.pad, theta=params.inherit_theta, area_cap=0.05
    )
    legal = legalize_abacus(design, widths=widths)
    return BaselineResult(
        placer="commercial_like",
        hpwl=design.hpwl(),
        runtime=time.perf_counter() - start,
        global_place=gp,
        inflation_rounds=hook.calls,
        notes={"legal_displacement": legal.total_displacement},
    )
