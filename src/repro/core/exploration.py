"""Bayesian-based strategy exploration (paper Sec. III-C, Algs. 2-3).

Placement with a router in the loop is an evaluation-expensive,
derivative-free black box, so strategy parameters are explored with SMBO
and the tree-structured Parzen estimator instead of manual tuning.

The protocol has two levels:

* :func:`parameter_exploration` (Algorithm 2) runs an SMBO loop over one
  (sub-)space with a time budget and an early-stop patience, then
  *shrinks the parameter ranges* around the good observations.
* :func:`strategy_exploration` (Algorithm 3) first explores all
  parameters together to get rough ranges, then repeatedly explores each
  relevance group with the other parameters pinned at their range
  midpoints, until every group stops early.  The final configuration is
  the midpoint of the final ranges.

Following the paper, exploration runs on a *small design with the
routability problem* and the resulting configuration transfers to the
large benchmarks (experiment A4 measures this transfer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..runtime import MISSING, stable_hash
from ..runtime.executor import Task
from ..tpe import Choice, Space, TPESampler, minimize
from .strategy import PARAM_GROUPS, StrategyParams, default_space

#: Loss assigned to a trial whose evaluation raised.  Large but finite:
#: ``inf`` would reach the TPE quantile split and risk NaN arithmetic,
#: while any finite penalty just banishes the region from the good half.
FAILED_TRIAL_LOSS = 1e18

#: Internal marker for a raw evaluation that failed (fresh, or replayed
#: from a ``failed`` journal record).
_TRIAL_FAILED = object()


@dataclass
class SuiteDesignFactory:
    """Picklable design factory over the Table-I suite.

    Equivalent to ``lambda: make_design(name, scale, seed)`` but able to
    cross a process boundary (parallel exploration workers) and to be
    hashed into runtime cache keys.
    """

    name: str
    scale: float
    seed: int = 0

    def __call__(self):
        from ..benchgen import make_design

        return make_design(self.name, self.scale, seed=self.seed)


class PlacementObjective:
    """The paper's evaluation function, packaged.

    Evaluates a configuration by running the full PUFFER flow on a fresh
    design from ``design_factory`` and routing it; the loss is the total
    overflow ratio (HOF + VOF, in percent).  A small wirelength term
    (``wl_weight`` loss points per 100 % wirelength growth over the first
    evaluation) breaks ties between configurations that all reach zero
    overflow — without it the estimator receives no gradient on easy
    designs and can wander into grossly over-padding regions that fail to
    transfer.

    The expensive part (:meth:`evaluate_raw`) is separated from the
    loss shaping (:meth:`loss_from_raw`) so batched exploration can run
    evaluations in worker processes while the wirelength reference —
    which is stateful, taken from the first evaluation — is applied in
    the parent, in suggestion order, exactly as the serial loop would.

    Instances are picklable whenever ``design_factory`` is (use
    :class:`SuiteDesignFactory` rather than a lambda for parallel runs).
    """

    def __init__(
        self,
        design_factory,
        placement=None,
        wl_weight: float = 0.02,
        router_params=None,
    ) -> None:
        from ..placer import PlacementParams

        self.design_factory = design_factory
        self.placement = placement or PlacementParams()
        self.wl_weight = wl_weight
        self.router_params = router_params
        self.reference_wl = None

    def evaluate_raw(self, params: dict) -> tuple:
        """Stateless expensive evaluation: ``(total_overflow, wirelength)``."""
        from ..router import GlobalRouter
        from .puffer import PufferPlacer

        strategy = StrategyParams.from_dict(params)
        design = self.design_factory()
        PufferPlacer(design, strategy=strategy, placement=self.placement).run()
        report = GlobalRouter(design, self.router_params).run()
        return (report.total_overflow, report.wirelength)

    def loss_from_raw(self, raw: tuple) -> float:
        """Shape a raw evaluation into the exploration loss."""
        overflow, wirelength = raw
        if self.reference_wl is None:
            self.reference_wl = max(wirelength, 1e-9)
        wl_term = self.wl_weight * 100.0 * (wirelength / self.reference_wl - 1.0)
        return overflow + wl_term

    def __call__(self, params: dict) -> float:
        return self.loss_from_raw(self.evaluate_raw(params))

    def cache_key(self, params: dict):
        """Runtime cache key of one evaluation, or ``None``.

        ``None`` (no caching) when the design factory cannot be
        canonicalized — e.g. a user-supplied lambda, whose identity the
        key could not soundly capture.
        """
        try:
            return stable_hash(
                {
                    "kind": "explore-eval",
                    "factory": self.design_factory,
                    "placement": self.placement,
                    "router": self.router_params,
                    "params": params,
                }
            )
        except TypeError:
            return None


def make_placement_objective(
    design_factory,
    placement=None,
    wl_weight: float = 0.02,
    router_params=None,
) -> PlacementObjective:
    """Package the paper's evaluation function (see :class:`PlacementObjective`).

    Returns:
        A callable ``params_dict -> float`` for
        :func:`strategy_exploration`.
    """
    return PlacementObjective(
        design_factory,
        placement=placement,
        wl_weight=wl_weight,
        router_params=router_params,
    )


def make_batch_evaluator(objective, executor=None, cache=None, journal=None):
    """Build a ``list[params] -> list[loss]`` batch evaluator.

    Used as the ``evaluator`` of :func:`strategy_exploration` /
    :func:`repro.tpe.minimize` to add concurrency and artifact reuse
    around an expensive objective:

    * with an ``executor``, candidates are evaluated across worker
      processes (``executor.map``);
    * with a ``cache`` (:class:`repro.runtime.ArtifactCache`) and/or a
      ``journal`` (:class:`repro.runtime.Journal`), raw evaluations are
      reused across runs — because exploration RNG is deterministic, a
      killed run resumes by replaying its journal hits at full speed.

    Objectives exposing the :class:`PlacementObjective` split
    (``evaluate_raw`` / ``loss_from_raw`` / ``cache_key``) get caching
    and parent-side loss shaping; plain callables are mapped directly
    (and are never cached, since their configuration is unknown).

    A trial whose evaluation raises does not abort the exploration: it
    scores :data:`FAILED_TRIAL_LOSS` and — when a journal is attached —
    leaves a ``failed`` record, so a ``--resume`` replays the failure
    instead of re-running the poisoned params on every restart.

    After each call the evaluator exposes ``evaluate.last_details``: one
    dict per candidate (``overflow``/``wirelength``/``cached`` for
    successes, ``failed``/``error`` for failures; ``None`` entries for
    unstructured objectives).
    """
    raw_fn = getattr(objective, "evaluate_raw", None)
    key_fn = getattr(objective, "cache_key", None)
    loss_fn = getattr(objective, "loss_from_raw", None)
    structured = raw_fn is not None and key_fn is not None and loss_fn is not None
    journaled: dict = {}
    if journal is not None:
        for record in journal.records():
            if "overflow" in record and "wirelength" in record:
                journaled[record["key"]] = (record["overflow"], record["wirelength"])
            elif "failed" in record:
                journaled[record["key"]] = _TRIAL_FAILED

    def evaluate(batch: list) -> list:
        evaluate.last_details = [None] * len(batch)
        if not structured:
            if executor is None:
                return [objective(params) for params in batch]
            return executor.map(objective, batch, key_prefix="trial")
        keys = [key_fn(params) for params in batch]
        raws: list = [None] * len(batch)
        details: list = evaluate.last_details
        todo = []
        for i, key in enumerate(keys):
            if key is not None and key in journaled:
                raws[i] = journaled[key]
                details[i] = {"cached": True}
            elif key is not None and cache is not None:
                value = cache.get(key)
                if value is not MISSING:
                    raws[i] = tuple(value)
                    details[i] = {"cached": True}
                else:
                    todo.append(i)
            else:
                todo.append(i)
        if todo:
            pending = [batch[i] for i in todo]
            if executor is None:
                fresh = []
                for params in pending:
                    try:
                        fresh.append(raw_fn(params))
                    except Exception as exc:
                        fresh.append(exc)
            else:
                tasks = [
                    Task(key=f"trial-{i}", fn=raw_fn, args=(params,))
                    for i, params in enumerate(pending)
                ]
                fresh = [
                    result.value if result.ok else result.error
                    for result in executor.run(tasks)
                ]
            for i, raw in zip(todo, fresh):
                if isinstance(raw, BaseException):
                    raws[i] = _TRIAL_FAILED
                    details[i] = {"cached": False, "error": str(raw)}
                    if keys[i] is not None and journal is not None:
                        journal.append(
                            {"key": keys[i],
                             "failed": f"{type(raw).__name__}: {raw}"}
                        )
                        journaled[keys[i]] = _TRIAL_FAILED
                    continue
                raw = (float(raw[0]), float(raw[1]))
                raws[i] = raw
                details[i] = {"cached": False}
                if keys[i] is None:
                    continue
                if cache is not None:
                    cache.put(keys[i], raw)
                if journal is not None:
                    journal.append(
                        {"key": keys[i], "overflow": raw[0], "wirelength": raw[1]}
                    )
                    journaled[keys[i]] = raw
        losses = []
        for i, raw in enumerate(raws):
            if raw is _TRIAL_FAILED:
                losses.append(FAILED_TRIAL_LOSS)
                details[i] = dict(details[i] or {}, failed=True)
            else:
                losses.append(loss_fn(raw))
                details[i] = dict(
                    details[i] or {}, overflow=raw[0], wirelength=raw[1]
                )
        return losses

    evaluate.last_details = []
    return evaluate


@dataclass
class ExplorationReport:
    """Outcome of a full strategy exploration.

    Attributes:
        params: the final (midpoint-of-range) strategy parameters.
        best_loss: best objective seen during exploration.
        best_params: the raw best configuration (not the midpoint).
        evaluations: total objective evaluations spent.
        space: the final, shrunken search space.
        group_rounds: sweeps over the group list (Algorithm 3 loop count).
    """

    params: StrategyParams
    best_loss: float
    best_params: dict
    evaluations: int
    space: Space
    group_rounds: int
    history: list = field(default_factory=list)


def parameter_exploration(
    objective,
    space: Space,
    explore_names: list,
    fixed: dict,
    max_evals: int,
    patience: int,
    rng,
    batch_size: int = 1,
    evaluator=None,
    warm_start=None,
) -> tuple:
    """Paper Algorithm 2 over the sub-space ``explore_names``.

    Args:
        objective: callable ``params_dict -> float`` over the full space.
        space: the current full space (provides ranges and midpoints).
        explore_names: dimensions explored in this call.
        fixed: values pinned for the non-explored dimensions.
        max_evals: evaluation budget ``TC``.
        patience: early-stop limit ``EC``.
        rng: ``numpy.random.Generator``.
        batch_size: SMBO batch size (1 = the bit-exact serial loop).
        evaluator: optional batch evaluator over *full* parameter dicts
            (see :func:`make_batch_evaluator`).
        warm_start: prior ``(full_params, loss)`` observations seeding
            the TPE good/bad split without being re-evaluated (transfer
            priors from other designs); entries missing any explored
            dimension are skipped, values are clipped into range.

    Returns:
        ``(new_space, stopped_early, result)`` where ``new_space`` has
        the explored dimensions' ranges shrunk around the good
        observations (Algorithm 2 line 14).
    """
    subspace = space.subspace(explore_names)
    sub_start = None
    if warm_start:
        sub_start = []
        for params, loss in warm_start:
            if any(dim.name not in params for dim in subspace):
                continue
            sub_start.append((
                {dim.name: dim.clip(params[dim.name]) for dim in subspace},
                float(loss),
            ))

    def sub_objective(sub_params: dict) -> float:
        full = dict(fixed)
        full.update(sub_params)
        return objective(full)

    sub_evaluator = None
    if evaluator is not None:
        def sub_evaluator(batch: list) -> list:
            full_batch = []
            for sub_params in batch:
                full = dict(fixed)
                full.update(sub_params)
                full_batch.append(full)
            return evaluator(full_batch)

    result = minimize(
        sub_objective,
        subspace,
        max_evals=max_evals,
        patience=patience,
        sampler=TPESampler(n_startup=max(3, max_evals // 8)),
        rng=rng,
        warm_start=sub_start,
        batch_size=batch_size,
        evaluator=sub_evaluator,
    )
    # Shrink ranges around the better half of the observations.
    losses = np.asarray([t.loss for t in result.trials])
    keep = max(len(losses) // 3, 1)
    good_idx = np.argsort(losses, kind="stable")[:keep]
    new_space = space
    for dim in subspace:
        if isinstance(dim, Choice):
            continue
        good_values = np.asarray(
            [result.trials[i].params[dim.name] for i in good_idx], dtype=np.float64
        )
        new_space = new_space.replaced(dim.shrunk(good_values))
    return new_space, result.stopped_early, result


def strategy_exploration(
    objective,
    space: Space | None = None,
    groups: dict | None = None,
    global_evals: int = 20,
    group_evals: int = 10,
    patience: int = 6,
    max_group_rounds: int = 3,
    rng=None,
    batch_size: int = 1,
    evaluator=None,
    warm_start=None,
    on_stage=None,
) -> ExplorationReport:
    """Paper Algorithm 3: global exploration, then grouped refinement.

    Args:
        objective: callable ``params_dict -> float`` (total overflow
            ratio of a placement + routing evaluation in the paper).
        space: initial parameter ranges (defaults to
            :func:`repro.core.strategy.default_space`).
        groups: name -> parameter-name-list relevance groups (defaults
            to :data:`repro.core.strategy.PARAM_GROUPS`).
        global_evals: budget of the initial all-parameter exploration.
        group_evals: budget per group per round.
        patience: early-stop limit per exploration.
        max_group_rounds: cap on sweeps over the group list (the paper's
            outer ``TC``).
        rng: seed or generator.
        batch_size: SMBO candidates evaluated per round.  ``1`` keeps
            the exploration bit-identical to the strictly-serial
            protocol; larger batches evaluate concurrently through
            ``evaluator`` at a small sequential-information cost.
        evaluator: optional batch evaluator over full parameter dicts
            (see :func:`make_batch_evaluator`); adds process-pool
            concurrency and cached/journaled evaluations.
        warm_start: prior ``(full_params, loss)`` observations seeding
            the *global* stage's TPE split (transfer priors from other
            designs); the grouped refinements run on this design's own
            observations only.
        on_stage: optional callable receiving each stage name
            (``"global"``, then group names) just before it runs —
            used to label streamed trial records.

    Returns:
        An :class:`ExplorationReport`; ``report.params`` is the final
        configuration (midpoint of the explored ranges).
    """
    rng = np.random.default_rng(rng)
    space = space or default_space()
    groups = groups or PARAM_GROUPS
    history = []
    evaluations = 0
    best_loss = np.inf
    best_params = None

    # Line 1-2: rough ranges from exploring everything simultaneously.
    if on_stage is not None:
        on_stage("global")
    with obs.span("explore/stage", stage="global") as stage_span:
        space, _early, result = parameter_exploration(
            objective, space, space.names(), {}, global_evals, patience, rng,
            batch_size=batch_size, evaluator=evaluator, warm_start=warm_start,
        )
        stage_span.set(best_loss=result.best.loss, evaluations=len(result.trials))
    evaluations += len(result.trials)
    history.append(("global", result.best.loss))
    if result.best.loss < best_loss:
        best_loss = result.best.loss
        best_params = dict(result.best.params)

    # Lines 3-11: grouped exploration with the rest pinned at midpoints.
    group_rounds = 0
    for _round in range(max_group_rounds):
        group_rounds += 1
        all_early = True
        for group_name, names in groups.items():
            fixed = {
                name: value
                for name, value in space.midpoint().items()
                if name not in names
            }
            if on_stage is not None:
                on_stage(group_name)
            with obs.span("explore/stage", stage=group_name) as stage_span:
                space, early, result = parameter_exploration(
                    objective, space, names, fixed, group_evals, patience, rng,
                    batch_size=batch_size, evaluator=evaluator,
                )
                stage_span.set(
                    best_loss=result.best.loss, evaluations=len(result.trials)
                )
            evaluations += len(result.trials)
            history.append((group_name, result.best.loss))
            all_early = all_early and early
            full_best = dict(fixed)
            full_best.update(result.best.params)
            if result.best.loss < best_loss:
                best_loss = result.best.loss
                best_params = full_best
        if all_early:
            break

    # Final configuration: midpoint of the explored ranges (the paper's
    # "median of the range").  Categorical strategies have no meaningful
    # range median, so they take their best-observed value instead.
    final = space.midpoint()
    if best_params:
        for dim in space:
            if isinstance(dim, Choice) and dim.name in best_params:
                final[dim.name] = best_params[dim.name]
    params = StrategyParams.from_dict(final)
    return ExplorationReport(
        params=params,
        best_loss=float(best_loss),
        best_params=best_params or space.midpoint(),
        evaluations=evaluations,
        space=space,
        group_rounds=group_rounds,
        history=history,
    )
