"""Bayesian-based strategy exploration (paper Sec. III-C, Algs. 2-3).

Placement with a router in the loop is an evaluation-expensive,
derivative-free black box, so strategy parameters are explored with SMBO
and the tree-structured Parzen estimator instead of manual tuning.

The protocol has two levels:

* :func:`parameter_exploration` (Algorithm 2) runs an SMBO loop over one
  (sub-)space with a time budget and an early-stop patience, then
  *shrinks the parameter ranges* around the good observations.
* :func:`strategy_exploration` (Algorithm 3) first explores all
  parameters together to get rough ranges, then repeatedly explores each
  relevance group with the other parameters pinned at their range
  midpoints, until every group stops early.  The final configuration is
  the midpoint of the final ranges.

Following the paper, exploration runs on a *small design with the
routability problem* and the resulting configuration transfers to the
large benchmarks (experiment A4 measures this transfer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tpe import Choice, Space, TPESampler, minimize
from .strategy import PARAM_GROUPS, StrategyParams, default_space


def make_placement_objective(
    design_factory,
    placement=None,
    wl_weight: float = 0.02,
    router_params=None,
):
    """The paper's evaluation function, packaged.

    Evaluates a configuration by running the full PUFFER flow on a fresh
    design from ``design_factory`` and routing it; the loss is the total
    overflow ratio (HOF + VOF, in percent).  A small wirelength term
    (``wl_weight`` loss points per 100 % wirelength growth over the first
    evaluation) breaks ties between configurations that all reach zero
    overflow — without it the estimator receives no gradient on easy
    designs and can wander into grossly over-padding regions that fail to
    transfer.

    Returns:
        A callable ``params_dict -> float`` for
        :func:`strategy_exploration`.
    """
    from ..placer import PlacementParams
    from ..router import GlobalRouter
    from .puffer import PufferPlacer

    placement = placement or PlacementParams()
    reference = {}

    def objective(params: dict) -> float:
        strategy = StrategyParams.from_dict(params)
        design = design_factory()
        PufferPlacer(design, strategy=strategy, placement=placement).run()
        report = GlobalRouter(design, router_params).run()
        if "wl" not in reference:
            reference["wl"] = max(report.wirelength, 1e-9)
        wl_term = wl_weight * 100.0 * (report.wirelength / reference["wl"] - 1.0)
        return report.total_overflow + wl_term

    return objective


@dataclass
class ExplorationReport:
    """Outcome of a full strategy exploration.

    Attributes:
        params: the final (midpoint-of-range) strategy parameters.
        best_loss: best objective seen during exploration.
        best_params: the raw best configuration (not the midpoint).
        evaluations: total objective evaluations spent.
        space: the final, shrunken search space.
        group_rounds: sweeps over the group list (Algorithm 3 loop count).
    """

    params: StrategyParams
    best_loss: float
    best_params: dict
    evaluations: int
    space: Space
    group_rounds: int
    history: list = field(default_factory=list)


def parameter_exploration(
    objective,
    space: Space,
    explore_names: list,
    fixed: dict,
    max_evals: int,
    patience: int,
    rng,
) -> tuple:
    """Paper Algorithm 2 over the sub-space ``explore_names``.

    Args:
        objective: callable ``params_dict -> float`` over the full space.
        space: the current full space (provides ranges and midpoints).
        explore_names: dimensions explored in this call.
        fixed: values pinned for the non-explored dimensions.
        max_evals: evaluation budget ``TC``.
        patience: early-stop limit ``EC``.
        rng: ``numpy.random.Generator``.

    Returns:
        ``(new_space, stopped_early, result)`` where ``new_space`` has
        the explored dimensions' ranges shrunk around the good
        observations (Algorithm 2 line 14).
    """
    subspace = space.subspace(explore_names)

    def sub_objective(sub_params: dict) -> float:
        full = dict(fixed)
        full.update(sub_params)
        return objective(full)

    result = minimize(
        sub_objective,
        subspace,
        max_evals=max_evals,
        patience=patience,
        sampler=TPESampler(n_startup=max(3, max_evals // 8)),
        rng=rng,
    )
    # Shrink ranges around the better half of the observations.
    losses = np.asarray([t.loss for t in result.trials])
    keep = max(len(losses) // 3, 1)
    good_idx = np.argsort(losses, kind="stable")[:keep]
    new_space = space
    for dim in subspace:
        if isinstance(dim, Choice):
            continue
        good_values = np.asarray(
            [result.trials[i].params[dim.name] for i in good_idx], dtype=np.float64
        )
        new_space = new_space.replaced(dim.shrunk(good_values))
    return new_space, result.stopped_early, result


def strategy_exploration(
    objective,
    space: Space | None = None,
    groups: dict | None = None,
    global_evals: int = 20,
    group_evals: int = 10,
    patience: int = 6,
    max_group_rounds: int = 3,
    rng=None,
) -> ExplorationReport:
    """Paper Algorithm 3: global exploration, then grouped refinement.

    Args:
        objective: callable ``params_dict -> float`` (total overflow
            ratio of a placement + routing evaluation in the paper).
        space: initial parameter ranges (defaults to
            :func:`repro.core.strategy.default_space`).
        groups: name -> parameter-name-list relevance groups (defaults
            to :data:`repro.core.strategy.PARAM_GROUPS`).
        global_evals: budget of the initial all-parameter exploration.
        group_evals: budget per group per round.
        patience: early-stop limit per exploration.
        max_group_rounds: cap on sweeps over the group list (the paper's
            outer ``TC``).
        rng: seed or generator.

    Returns:
        An :class:`ExplorationReport`; ``report.params`` is the final
        configuration (midpoint of the explored ranges).
    """
    rng = np.random.default_rng(rng)
    space = space or default_space()
    groups = groups or PARAM_GROUPS
    history = []
    evaluations = 0
    best_loss = np.inf
    best_params = None

    # Line 1-2: rough ranges from exploring everything simultaneously.
    space, _early, result = parameter_exploration(
        objective, space, space.names(), {}, global_evals, patience, rng
    )
    evaluations += len(result.trials)
    history.append(("global", result.best.loss))
    if result.best.loss < best_loss:
        best_loss = result.best.loss
        best_params = dict(result.best.params)

    # Lines 3-11: grouped exploration with the rest pinned at midpoints.
    group_rounds = 0
    for _round in range(max_group_rounds):
        group_rounds += 1
        all_early = True
        for group_name, names in groups.items():
            fixed = {
                name: value
                for name, value in space.midpoint().items()
                if name not in names
            }
            space, early, result = parameter_exploration(
                objective, space, names, fixed, group_evals, patience, rng
            )
            evaluations += len(result.trials)
            history.append((group_name, result.best.loss))
            all_early = all_early and early
            full_best = dict(fixed)
            full_best.update(result.best.params)
            if result.best.loss < best_loss:
                best_loss = result.best.loss
                best_params = full_best
        if all_early:
            break

    # Final configuration: midpoint of the explored ranges (the paper's
    # "median of the range").  Categorical strategies have no meaningful
    # range median, so they take their best-observed value instead.
    final = space.midpoint()
    if best_params:
        for dim in space:
            if isinstance(dim, Choice) and dim.name in best_params:
                final[dim.name] = best_params[dim.name]
    params = StrategyParams.from_dict(final)
    return ExplorationReport(
        params=params,
        best_loss=float(best_loss),
        best_params=best_params or space.midpoint(),
        evaluations=evaluations,
        space=space,
        group_rounds=group_rounds,
        history=history,
    )
