"""The PUFFER flow: global placement -> routability rounds -> padded
legalization (paper Fig. 2).

Like the puffer fish, cells adjust their sizes to their surroundings: the
routability optimizer pads cells during global placement, and the *same*
accumulated padding is inherited by legalization as discretized white
space (Sec. III-D) — the consistency that preserves the optimization
effect through the whole flow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .. import obs
from ..legalizer import legalize_abacus, legalize_tetris, padded_widths
from ..netlist.design import Design
from ..placer import GlobalPlaceResult, GlobalPlacer, PlacementParams
from .optimizer import RoutabilityOptimizer
from .strategy import StrategyParams


@dataclass
class FlowEvent:
    """One step of the flow trace (regenerates paper Fig. 2)."""

    stage: str
    detail: str
    time: float


@dataclass
class PufferResult:
    """Outcome of a full PUFFER run.

    Attributes:
        global_place: convergence record of the placement engine.
        hpwl: legalized half-perimeter wirelength.
        runtime: end-to-end seconds.
        padding_rounds: number of routability-optimization firings.
        total_padding_area: padded area carried into legalization.
        legal_displacement: total legalization displacement.
        events: the flow trace.
        padding: per-cell *continuous* padding accumulated by the
            routability optimizer (the input of Eq. 17).
        legal_widths: per-cell legalization footprint widths
            (``design.w`` plus the capped discrete padding) — what the
            :mod:`repro.verify` padding checker audits.
    """

    global_place: GlobalPlaceResult
    hpwl: float
    runtime: float
    padding_rounds: int
    total_padding_area: float
    legal_displacement: float
    events: list = field(default_factory=list)
    padding: object | None = None
    legal_widths: object | None = None


class PufferPlacer:
    """Routability-driven placement via cell padding (the paper's system).

    Args:
        design: design to place (positions mutate in place).
        strategy: strategy parameters (explored or defaults).
        placement: underlying ePlace engine parameters.

    Example:
        >>> from repro.benchgen import make_design
        >>> from repro.core import PufferPlacer
        >>> design = make_design("OR1200", scale=0.002)
        >>> result = PufferPlacer(design).run()
        >>> result.hpwl > 0
        True
    """

    def __init__(
        self,
        design: Design,
        strategy: StrategyParams | None = None,
        placement: PlacementParams | None = None,
        estimator_params=None,
        feature_params=None,
    ) -> None:
        self.design = design
        self.strategy = strategy or StrategyParams()
        self.placement = placement or PlacementParams()
        self.optimizer = RoutabilityOptimizer(
            design,
            self.strategy,
            estimator_params=estimator_params,
            feature_params=feature_params,
        )

    def run(self) -> PufferResult:
        """Execute the full flow on the design."""
        with obs.span("puffer/run", design=self.design.name) as run_span:
            result = self._run()
            run_span.set(
                hpwl=result.hpwl,
                padding_rounds=result.padding_rounds,
                total_padding_area=result.total_padding_area,
                legal_displacement=result.legal_displacement,
            )
        return result

    def _run(self) -> PufferResult:
        start = time.perf_counter()
        events = [FlowEvent("global_placement", "start", 0.0)]

        with obs.span("puffer/global_placement") as gp_span:
            placer = GlobalPlacer(self.design, self.placement, hooks=[self.optimizer])
            gp = placer.run()
            gp_span.set(
                iterations=gp.iterations,
                converged=gp.converged,
                padding_rounds=self.optimizer.calls,
            )
        for event in self.optimizer.events:
            events.append(
                FlowEvent(
                    "routability_optimization",
                    f"round {event.round_index} at GP iter {event.gp_iteration} "
                    f"(est HOF {event.est_hof:.2f}% VOF {event.est_vof:.2f}%, "
                    f"padding util {event.utilization:.3f})",
                    time.perf_counter() - start,
                )
            )
        events.append(
            FlowEvent("global_placement", f"converged={gp.converged}", time.perf_counter() - start)
        )

        # White-space-assisted legalization: inherit the padding (Eq. 17).
        with obs.span("puffer/legalization", legalizer=self.strategy.legalizer) as leg_span:
            widths = padded_widths(
                self.design,
                self.optimizer.padding.pad,
                theta=self.strategy.theta,
                area_cap=self.strategy.legal_area_cap,
            )
            legalize = (
                legalize_tetris if self.strategy.legalizer == "tetris" else legalize_abacus
            )
            legal = legalize(self.design, widths=widths)
            leg_span.set(displacement=legal.total_displacement)
        events.append(
            FlowEvent(
                "legalization",
                f"{self.strategy.legalizer}, displacement {legal.total_displacement:.0f}",
                time.perf_counter() - start,
            )
        )

        return PufferResult(
            global_place=gp,
            hpwl=self.design.hpwl(),
            runtime=time.perf_counter() - start,
            padding_rounds=self.optimizer.calls,
            total_padding_area=self.optimizer.padding.total_padding_area,
            legal_displacement=legal.total_displacement,
            events=events,
            padding=self.optimizer.padding.pad.copy(),
            legal_widths=widths,
        )
