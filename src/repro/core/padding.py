"""Multi-feature cell padding with recycling and utilization control.

Implements paper Sec. III-B2/B3 (Eqs. 14-16 and Algorithm 1).  Padding is
*incremental*: each routability round adds the newly computed padding on
top of the accumulated state, cells that have drifted away from congested
regions are recycled (their historical padding partially withdrawn), and
the total padded area follows a rising utilization schedule so early
rounds cannot over-pad and trap the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netlist.design import Design
from .features import FEATURE_NAMES, FeatureSet
from .strategy import StrategyParams


@dataclass
class PaddingRound:
    """Bookkeeping of one padding round.

    Attributes:
        round_index: 1-based round counter ``i``.
        added_area: raw padded area requested this round (before
            recycling and scaling).
        added_fraction: net change of the *applied* padding area this
            round over the available area — the padding convergence
            measure the eta trigger condition reads: a small value means
            the padding has stabilized.
        total_area: padded area after recycling/scaling.
        utilization: ``total_area / available_area``.
        budget_fraction: ``total_area / (pu_i * available_area)``.
        scaled: whether the utilization cap forced a rescale.
        num_padded: cells receiving positive padding this round.
        num_recycled: cells whose history was withdrawn this round.
    """

    round_index: int
    added_area: float
    added_fraction: float
    total_area: float
    utilization: float
    budget_fraction: float
    scaled: bool
    num_padded: int
    num_recycled: int


class PaddingEngine:
    """Accumulates per-cell padding widths across routability rounds.

    Args:
        design: design being placed.
        params: strategy parameters.
        initial_pad: warm-start padding carried over from a previous
            converged run (:mod:`repro.eco` sessions).  The recycling
            mechanism of Eq. (15) is explicitly built around padding
            history surviving across rounds; seeding it across *runs*
            extends the same mechanism to delta workloads.  The array is
            copied; cells that are fixed or macros in this design are
            zeroed.
        initial_round: round counter the warm start resumes from (the
            utilization schedule of Eq. (16) continues rather than
            restarting at ``pu_low``).
    """

    def __init__(
        self,
        design: Design,
        params: StrategyParams,
        initial_pad: np.ndarray | None = None,
        initial_round: int = 0,
    ) -> None:
        self.design = design
        self.params = params
        n = design.num_cells
        self._movable = design.movable & ~design.is_macro
        if initial_pad is not None:
            if len(initial_pad) != n:
                raise ValueError(
                    f"initial_pad length {len(initial_pad)} != {n} cells"
                )
            self.pad = np.asarray(initial_pad, dtype=np.float64).copy()
            self.pad[~self._movable] = 0.0
        else:
            self.pad = np.zeros(n)  # accumulated padding width per cell
        self.pad_times = np.zeros(n, dtype=np.int64)  # pt(c)
        self.round_index = int(initial_round)
        self.history: list = []
        self.available_area = self._available_area()

    def _available_area(self) -> float:
        """White space: free die area minus movable cell area."""
        design = self.design
        fixed = ~design.movable
        fixed_area = float((design.w[fixed] * design.h[fixed]).sum())
        free = design.die.area - fixed_area
        return max(free - design.movable_area, 1e-9)

    # ------------------------------------------------------------------
    # One round (Algorithm 1)
    # ------------------------------------------------------------------

    def compute_padding(self, features: FeatureSet) -> np.ndarray:
        """Paper Eq. (14): per-cell padding from the weighted features."""
        params = self.params
        score = np.full(self.design.num_cells, params.beta)
        for alpha, name in zip(params.alphas(), FEATURE_NAMES):
            score += alpha * features[name]
        pad = np.log(np.maximum(score, 1.0)) * params.mu
        pad[~self._movable] = 0.0
        return pad

    def recycle_rate(self) -> np.ndarray:
        """Paper Eq. (15): per-cell recycle rate for the current round."""
        i = self.round_index
        rate = (i - self.pad_times) / (i + self.params.zeta)
        return np.clip(rate, 0.0, 1.0)

    def target_utilization(self) -> float:
        """Paper Eq. (16): padding utilization allowed this round."""
        params = self.params
        i = min(self.round_index, params.xi)
        if params.xi <= 1:
            return params.pu_high
        frac = (i - 1) / (params.xi - 1)
        return params.pu_low + frac * (params.pu_high - params.pu_low)

    def run_round(self, features: FeatureSet) -> PaddingRound:
        """Execute Algorithm 1 once; mutates the accumulated state."""
        self.round_index += 1
        design = self.design
        total_before = self.total_padding_area
        new_pad = self.compute_padding(features)
        positive = new_pad > 0.0

        # Incremental padding on positively scored cells.
        self.pad[positive] += new_pad[positive]
        self.pad_times[positive] += 1
        added_area = float((new_pad[positive] * design.h[positive]).sum())

        # Recycling of the rest (Eq. 15): withdraw part of the history.
        recycle_mask = self._movable & ~positive & (self.pad > 0.0)
        rate = self.recycle_rate()
        self.pad[recycle_mask] *= 1.0 - rate[recycle_mask]

        # Utilization control (Algorithm 1 lines 5-9).
        pu = self.target_utilization()
        budget = pu * self.available_area
        total_area = float((self.pad[self._movable] * design.h[self._movable]).sum())
        scaled = False
        if total_area > budget:
            self.pad[self._movable] *= budget / total_area
            total_area = budget
            scaled = True

        record = PaddingRound(
            round_index=self.round_index,
            added_area=added_area,
            added_fraction=abs(total_area - total_before) / self.available_area,
            total_area=total_area,
            utilization=total_area / self.available_area,
            budget_fraction=total_area / max(budget, 1e-12),
            scaled=scaled,
            num_padded=int(positive.sum()),
            num_recycled=int(recycle_mask.sum()),
        )
        self.history.append(record)
        return record

    # ------------------------------------------------------------------
    # Consumers
    # ------------------------------------------------------------------

    def padded_sizes(self) -> tuple:
        """Effective ``(w, h)`` for the electrostatic density system."""
        w_eff = self.design.w.copy()
        w_eff[self._movable] += self.pad[self._movable]
        return w_eff, self.design.h.copy()

    @property
    def total_padding_area(self) -> float:
        return float(
            (self.pad[self._movable] * self.design.h[self._movable]).sum()
        )
