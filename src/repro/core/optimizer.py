"""The routability optimizer: PUFFER's global-placement hook.

Ties together congestion estimation, feature extraction, and the padding
engine (paper Fig. 2, middle box).  Registered as an iteration hook on
:class:`repro.placer.engine.GlobalPlacer`, it fires when the paper's
three trigger conditions hold:

1. the density overflow is below ``tau`` (cells have spread enough for
   the congestion estimate to be meaningful),
2. the padding utilization of the preceding round is below ``eta`` —
   the padding is converging rather than still growing violently, and
3. fewer than ``xi`` rounds have run.

Each firing rewrites the effective cell sizes in the electrostatic
system, so the subsequent placement iterations spread padded cells apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..netlist.design import Design
from ..placer.engine import PlacerState
from .congestion import CongestionEstimator, CongestionMap, EstimatorParams
from .expansion import ExpansionParams
from .features import FeatureExtractor, FeatureParams
from .padding import PaddingEngine
from .strategy import StrategyParams


@dataclass
class RoundEvent:
    """Trace record of one routability-optimization firing."""

    gp_iteration: int
    round_index: int
    est_hof: float
    est_vof: float
    padding_area: float
    utilization: float


class RoutabilityOptimizer:
    """Congestion-driven cell-padding hook for the global placer."""

    def __init__(
        self,
        design: Design,
        strategy: StrategyParams | None = None,
        estimator_params: EstimatorParams | None = None,
        feature_params: FeatureParams | None = None,
        min_gap: int = 5,
        initial_padding=None,
        initial_round: int = 0,
    ) -> None:
        self.design = design
        self.strategy = strategy or StrategyParams()
        est = estimator_params or EstimatorParams(
            expansion=ExpansionParams()
        )
        self.estimator = CongestionEstimator(design, est)
        if feature_params is None:
            feature_params = FeatureParams(kernel_size=self.strategy.kernel_size)
        self.extractor = FeatureExtractor(design, feature_params)
        self.padding = PaddingEngine(
            design,
            self.strategy,
            initial_pad=initial_padding,
            initial_round=initial_round,
        )
        self.min_gap = min_gap
        self.calls = 0
        self.last_call_iteration = -10**9
        self.last_map: CongestionMap | None = None
        self.events: list = []

    # ------------------------------------------------------------------
    # Trigger logic
    # ------------------------------------------------------------------

    def should_fire(self, state: PlacerState) -> bool:
        """The paper's three trigger conditions plus an iteration gap."""
        if self.calls >= self.strategy.xi:
            return False
        if state.overflow >= self.strategy.tau:
            return False
        if self.padding.history:
            # Padding-convergence condition: the preceding round must not
            # still be adding large amounts of padding (utilization of
            # the newly generated padding below eta).
            if self.padding.history[-1].added_fraction >= self.strategy.eta:
                return False
        if state.iteration - self.last_call_iteration < self.min_gap:
            return False
        return True

    # ------------------------------------------------------------------
    # Hook protocol
    # ------------------------------------------------------------------

    def __call__(self, state: PlacerState) -> bool:
        if not self.should_fire(state):
            return False
        self.calls += 1
        self.last_call_iteration = state.iteration

        with obs.span(
            "puffer/padding_round", round=self.calls, gp_iteration=state.iteration
        ) as round_span:
            cmap, topologies, _demand = self.estimator.estimate()
            self.last_map = cmap
            features = self.extractor.extract(cmap, topologies)
            record = self.padding.run_round(features)
            w_eff, h_eff = self.padding.padded_sizes()
            state.set_density_sizes(w_eff, h_eff)

            est_hof, est_vof = cmap.overflow_ratio()
            round_span.set(
                est_hof=est_hof,
                est_vof=est_vof,
                padding_area=record.total_area,
                utilization=record.utilization,
            )
        obs.histogram("puffer/padding_area").observe(record.total_area)
        obs.histogram("puffer/padding_utilization").observe(record.utilization)
        self.events.append(
            RoundEvent(
                gp_iteration=state.iteration,
                round_index=record.round_index,
                est_hof=est_hof,
                est_vof=est_vof,
                padding_area=record.total_area,
                utilization=record.utilization,
            )
        )
        return True
