"""PUFFER core: congestion estimation, multi-feature cell padding,
routability-driven placement, and strategy exploration."""

from .analysis import PaddingSummary, padding_histogram, round_trajectory, summarize_padding
from .capacity import CapacityModel
from .congestion import (
    CongestionEstimator,
    CongestionMap,
    EstimatorParams,
    combine_congestion,
)
from .demand import DemandResult, ISegment, NetTopology, accumulate_demand, build_topologies
from .expansion import ExpansionParams, expand_demand
from .features import FEATURE_NAMES, FeatureExtractor, FeatureParams, FeatureSet
from .optimizer import RoundEvent, RoutabilityOptimizer
from .padding import PaddingEngine, PaddingRound
from .puffer import FlowEvent, PufferPlacer, PufferResult
from .rudy import rudy_maps, rudy_overflow
from .strategy import PARAM_GROUPS, StrategyParams, default_space

__all__ = [
    "CapacityModel",
    "CongestionEstimator",
    "CongestionMap",
    "DemandResult",
    "EstimatorParams",
    "ExpansionParams",
    "FEATURE_NAMES",
    "FeatureExtractor",
    "FeatureParams",
    "FeatureSet",
    "FlowEvent",
    "ISegment",
    "NetTopology",
    "PARAM_GROUPS",
    "PaddingEngine",
    "PaddingRound",
    "PaddingSummary",
    "PufferPlacer",
    "PufferResult",
    "RoundEvent",
    "RoutabilityOptimizer",
    "StrategyParams",
    "accumulate_demand",
    "build_topologies",
    "combine_congestion",
    "default_space",
    "expand_demand",
    "padding_histogram",
    "round_trajectory",
    "rudy_maps",
    "rudy_overflow",
    "summarize_padding",
]
