"""RUDY: Rectangular Uniform wire DensitY estimation (Spindler [2]).

The classic lightweight congestion estimator the paper cites as the
probabilistic-model baseline: every net spreads a demand of
``wirelength / bbox_area`` uniformly over its bounding box, with the
horizontal share proportional to the bbox width and the vertical share
to its height.  No routing topology is required, which makes RUDY very
fast — and measurably less accurate than PUFFER's detour-imitation
estimator (ablation A3 compares both against the router).
"""

from __future__ import annotations

import numpy as np

from .. import kernels, obs
from ..netlist.design import Design
from ..router.grid import RoutingGrid, build_grid


def rudy_maps(
    design: Design,
    grid: RoutingGrid | None = None,
    pin_penalty: float = 0.05,
) -> tuple:
    """Per-direction RUDY demand maps.

    Args:
        design: the placed design.
        grid: Gcell grid (built from the design when omitted).
        pin_penalty: local demand added per pin, matching the PUFFER
            estimator so the two are comparable.

    Returns:
        ``(dmd_h, dmd_v, grid)`` demand arrays of shape ``(nx, ny)``.
    """
    grid = grid or build_grid(design)
    xlo, ylo, xhi, yhi = design.net_bboxes()
    degrees = design.net_degrees()
    nets = np.flatnonzero(degrees >= 2)
    with obs.span("congestion/rudy", nets=len(nets)) as span:
        gx0, gy0 = grid.gcell_of(xlo[nets], ylo[nets])
        gx1, gy1 = grid.gcell_of(xhi[nets], yhi[nets])
        nx_cells = gx1 - gx0 + 1
        ny_cells = gy1 - gy0 + 1
        # One horizontal track across the bbox per covered row, averaged
        # over the rows, and symmetrically for vertical.
        dmd_h = kernels.rect_add(
            grid.nx, grid.ny, gx0, gx1, gy0, gy1, 1.0 / ny_cells
        )
        dmd_v = kernels.rect_add(
            grid.nx, grid.ny, gx0, gx1, gy0, gy1, 1.0 / nx_cells
        )

        if pin_penalty > 0 and design.num_pins:
            px, py = design.pin_positions()
            pgx, pgy = grid.gcell_of(px, py)
            np.add.at(dmd_h, (pgx, pgy), pin_penalty)
            np.add.at(dmd_v, (pgx, pgy), pin_penalty)
        span.set(backend=kernels.current())
    return dmd_h, dmd_v, grid


def rudy_overflow(design: Design, grid: RoutingGrid | None = None) -> tuple:
    """RUDY-estimated ``(hof, vof)`` percentages, mirroring the router."""
    dmd_h, dmd_v, grid = rudy_maps(design, grid)
    over_h = np.maximum(dmd_h - grid.cap_h, 0.0).sum()
    over_v = np.maximum(dmd_v - grid.cap_v, 0.0).sum()
    return (
        float(100.0 * over_h / max(grid.cap_h.sum(), 1e-12)),
        float(100.0 * over_v / max(grid.cap_v.sum(), 1e-12)),
    )
