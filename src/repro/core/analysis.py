"""Diagnostics for the padding process.

Answers the questions a user of the framework asks after a run: where
did the padding go, did it track congestion, and how did each round
contribute?  Consumed by the ``congestion_analysis`` example and the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .congestion import CongestionMap
from .padding import PaddingEngine


@dataclass
class PaddingSummary:
    """Aggregate view of a finished padding state.

    Attributes:
        num_padded: cells carrying positive padding.
        total_area: padded area in database units squared.
        utilization: padded area over available white space.
        mean_pad / max_pad: width statistics over padded cells.
        congestion_correlation: Pearson correlation between per-cell
            padding and local combined congestion — positive means the
            padding targeted the congested regions.
        rounds: padding rounds executed.
    """

    num_padded: int
    total_area: float
    utilization: float
    mean_pad: float
    max_pad: float
    congestion_correlation: float
    rounds: int


def summarize_padding(
    engine: PaddingEngine, cmap: CongestionMap | None = None
) -> PaddingSummary:
    """Summarize ``engine``'s accumulated state.

    Args:
        engine: the padding engine after a run.
        cmap: congestion map for the correlation diagnostic (skipped when
            omitted).
    """
    design = engine.design
    movable = design.movable & ~design.is_macro
    pad = engine.pad[movable]
    padded = pad > 0
    correlation = float("nan")
    if cmap is not None and padded.sum() >= 2:
        gx, gy = cmap.grid.gcell_of(design.x[movable], design.y[movable])
        local = cmap.cg[gx, gy]
        if np.std(pad) > 0 and np.std(local) > 0:
            correlation = float(np.corrcoef(pad, local)[0, 1])
    return PaddingSummary(
        num_padded=int(padded.sum()),
        total_area=engine.total_padding_area,
        utilization=engine.total_padding_area / engine.available_area,
        mean_pad=float(pad[padded].mean()) if padded.any() else 0.0,
        max_pad=float(pad.max()) if len(pad) else 0.0,
        congestion_correlation=correlation,
        rounds=engine.round_index,
    )


def padding_histogram(engine: PaddingEngine, bins: int = 10) -> "list[tuple]":
    """Histogram of positive padding widths: ``(lo, hi, count)`` rows."""
    design = engine.design
    movable = design.movable & ~design.is_macro
    pad = engine.pad[movable]
    pad = pad[pad > 0]
    if len(pad) == 0:
        return []
    counts, edges = np.histogram(pad, bins=bins)
    return [
        (float(edges[i]), float(edges[i + 1]), int(counts[i]))
        for i in range(len(counts))
    ]


def round_trajectory(engine: PaddingEngine) -> "list[dict]":
    """Per-round records as plain dicts (for tables / JSON export)."""
    return [
        {
            "round": r.round_index,
            "added_area": r.added_area,
            "added_fraction": r.added_fraction,
            "total_area": r.total_area,
            "utilization": r.utilization,
            "scaled": r.scaled,
            "num_padded": r.num_padded,
            "num_recycled": r.num_recycled,
        }
        for r in engine.history
    ]
