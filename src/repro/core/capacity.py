"""Blockage-aware routing capacity assessment (paper Sec. III-A1).

PUFFER evaluates capacity with the same Gcell-based resource model as the
router (paper Eq. 8): the basic per-direction track count from the metal
stack minus tracks consumed by blockages (macro keep-outs, power straps,
pin obstructions).  The computation is shared with
:func:`repro.router.grid.build_grid` so estimator and evaluator agree on
resources; this module adds caching, since capacity depends only on fixed
objects and never changes across padding rounds.
"""

from __future__ import annotations

from ..netlist.design import Design
from ..router.grid import RoutingGrid, build_grid


class CapacityModel:
    """Caches the blockage-aware capacity grid for one design."""

    def __init__(self, design: Design) -> None:
        self._design = design
        self._grid: RoutingGrid | None = None

    @property
    def grid(self) -> RoutingGrid:
        """The capacity grid, built on first access (Eq. 8)."""
        if self._grid is None:
            self._grid = build_grid(self._design)
        return self._grid

    def invalidate(self) -> None:
        """Drop the cache (call when blockages change)."""
        self._grid = None
