"""Detour-imitating routing demand expansion (paper Sec. III-A3).

Clustered cells concentrate the probabilistic demand into narrow stripes;
a real router (and the eventual cell spreading) would instead detour
through neighbouring Gcell rows/columns.  Rather than perturb the
electrostatic system by spreading cells directly, PUFFER rewrites the
demand map: every *congested I-shaped* two-point net redistributes its
unit demand over the neighbouring rows (columns) in proportion to their
remaining capacity.  A Steiner endpoint additionally receives
perpendicular demand connecting the displaced run back to the tree — a
routing detour — while a pin endpoint does not, because the owning cell
itself can move (cell spreading).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..router.grid import RoutingGrid
from .demand import DemandResult, ISegment


@dataclass
class ExpansionParams:
    """Knobs of the demand expansion.

    Attributes:
        radius: how many rows/columns on each side receive demand.
        keep_weight: minimum weight retained by the original row even
            when it has no spare capacity (keeps the map smooth).
    """

    radius: int = 2
    keep_weight: float = 0.25


def expand_demand(
    grid: RoutingGrid,
    demand: DemandResult,
    params: ExpansionParams | None = None,
) -> None:
    """Expand congested I-segments in place (paper Fig. 3c).

    Congestion is judged against the *current* maps, so earlier
    expansions relieve later ones — imitating routers negotiating
    resources one net at a time.
    """
    params = params or ExpansionParams()
    with obs.span("congestion/expansion", segments=len(demand.i_segments)):
        for seg in demand.i_segments:
            if seg.horizontal:
                _expand_one(
                    grid.cap_h, demand.dmd_h, demand.dmd_v, grid.ny, seg, params
                )
            else:
                # The transposed views make the vertical case identical.
                _expand_one(
                    grid.cap_v.T, demand.dmd_v.T, demand.dmd_h.T, grid.nx, seg, params
                )


def _expand_one(
    cap: np.ndarray,
    dmd: np.ndarray,
    dmd_perp: np.ndarray,
    num_rows: int,
    seg: ISegment,
    params: ExpansionParams,
) -> None:
    """Redistribute one horizontal-convention I-segment.

    ``cap``/``dmd`` are indexed ``[along, across]``: for a horizontal
    segment that is ``[gx, gy]``; the vertical case passes transposed
    views so the same code applies.
    """
    row = seg.fixed
    span = slice(seg.lo, seg.hi + 1)
    length = seg.hi - seg.lo + 1
    over = dmd[span, row] - cap[span, row]
    if over.max() <= 0.0:
        return
    lo_k = max(row - params.radius, 0) - row
    hi_k = min(row + params.radius, num_rows - 1) - row
    offsets = np.arange(lo_k, hi_k + 1)
    avail = np.empty(len(offsets))
    for i, k in enumerate(offsets):
        spare = cap[span, row + k] - dmd[span, row + k]
        avail[i] = max(float(spare.sum()), 0.0)
    weights = avail.copy()
    weights[offsets == 0] += params.keep_weight * max(length, 1)
    total = weights.sum()
    if total <= 0.0:
        return
    weights /= total

    # Redistribute the unit demand across the neighbouring rows.
    dmd[span, row] -= 1.0
    for k, w in zip(offsets, weights):
        if w <= 0.0:
            continue
        dmd[span, row + k] += w
        if k == 0:
            continue
        # Detour connection at Steiner endpoints only (paper Fig. 3c):
        # perpendicular demand between the original and displaced rows.
        step = 1 if k > 0 else -1
        across = slice(min(row + step, row + k), max(row + step, row + k) + 1)
        if not seg.lo_is_pin:
            dmd_perp[seg.lo, across] += w
        if not seg.hi_is_pin:
            dmd_perp[seg.hi, across] += w
