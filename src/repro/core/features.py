"""Multi-feature extraction for cell padding (paper Sec. III-B1).

Three feature classes, each covering a blind spot of the previous one:

* **Local** features — the signed congestion (Eq. 9) and pin density of
  the Gcells a cell overlaps.  Clipped views used by prior work cannot
  tell clustered cells apart; keeping the sign preserves the deviation
  between the estimate and the eventual routing result.
* **CNN-inspired** features — a mean-filter "convolution" over an
  expanded bounding box captures the surrounding region, like a CNN
  kernel aggregating neighbouring elements.
* **GNN-inspired** features — pin congestion (Eqs. 12-13) aggregates
  congestion along the *netlist topology*: for every pin, the best
  (minimum over candidate L/Z paths) of the worst (maximum along the
  path) congestion of its two-point nets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import uniform_filter

from ..netlist.design import Design
from .congestion import CongestionMap


FEATURE_NAMES = (
    "local_cg",
    "local_pin",
    "around_cg",
    "around_pin",
    "pin_cg",
)


@dataclass
class FeatureParams:
    """Feature-extraction knobs.

    Attributes:
        kernel_size: mean-filter size (Gcells) of the CNN-inspired
            features — the convolution-kernel analogue.
        z_samples: interior Z-path positions sampled per direction when
            enumerating candidate paths for pin congestion.
        use_cnn / use_gnn: feature-class switches (ablation A1).
    """

    kernel_size: int = 3
    z_samples: int = 2
    use_cnn: bool = True
    use_gnn: bool = True


@dataclass
class FeatureSet:
    """Per-cell feature arrays, in :data:`FEATURE_NAMES` order."""

    values: dict

    def matrix(self, names=FEATURE_NAMES) -> np.ndarray:
        """``(num_cells, num_features)`` matrix in the given name order."""
        return np.stack([self.values[n] for n in names], axis=1)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.values[name]


class FeatureExtractor:
    """Computes the padding features for one design."""

    def __init__(self, design: Design, params: FeatureParams | None = None) -> None:
        self.design = design
        self.params = params or FeatureParams()

    def extract(self, cmap: CongestionMap, topologies: list) -> FeatureSet:
        """All features at the design's current placement.

        Fixed cells and macros receive zero features (they are never
        padded).
        """
        design = self.design
        n = design.num_cells
        grid = cmap.grid
        movable = design.movable & ~design.is_macro
        values = {name: np.zeros(n) for name in FEATURE_NAMES}

        idx = np.flatnonzero(movable)
        if len(idx) == 0:
            return FeatureSet(values)
        xlo = design.x[idx] - design.w[idx] / 2
        xhi = design.x[idx] + design.w[idx] / 2
        ylo = design.y[idx] - design.h[idx] / 2
        yhi = design.y[idx] + design.h[idx] / 2

        # Local features: max over the (up to four) overlapped Gcells.
        values["local_cg"][idx] = _corner_max(grid, cmap.cg, xlo, ylo, xhi, yhi)
        values["local_pin"][idx] = _corner_max(
            grid, cmap.pin_density, xlo, ylo, xhi, yhi
        )

        if self.params.use_cnn:
            k = max(int(self.params.kernel_size), 1)
            around_cg = uniform_filter(cmap.cg, size=k, mode="nearest")
            around_pin = uniform_filter(cmap.pin_density, size=k, mode="nearest")
            gx, gy = grid.gcell_of(design.x[idx], design.y[idx])
            values["around_cg"][idx] = around_cg[gx, gy]
            values["around_pin"][idx] = around_pin[gx, gy]

        if self.params.use_gnn:
            values["pin_cg"] = self._pin_congestion(cmap, topologies)
            values["pin_cg"][~movable] = 0.0
        return FeatureSet(values)

    # ------------------------------------------------------------------
    # GNN-inspired pin congestion (Eqs. 12-13)
    # ------------------------------------------------------------------

    def _pin_congestion(self, cmap: CongestionMap, topologies: list) -> np.ndarray:
        design = self.design
        grid = cmap.grid
        cg = cmap.cg
        px, py = design.pin_positions()
        pgx, pgy = grid.gcell_of(px, py)

        # Best (min over candidate paths) worst-Gcell congestion per
        # topology point, for pin points of every net.
        point_values = []
        for topo in topologies:
            best = np.full(len(topo.gx), np.inf)
            for a, b in topo.edges:
                value = self._segment_path_congestion(
                    cg, int(topo.gx[a]), int(topo.gy[a]), int(topo.gx[b]), int(topo.gy[b])
                )
                best[a] = min(best[a], value)
                best[b] = min(best[b], value)
            point_values.append(best)

        pin_cg_cell = np.zeros(design.num_cells)
        for topo, best in zip(topologies, point_values):
            pins = design.pins_of_net(topo.net)
            for p in pins:
                key = (int(pgx[p]), int(pgy[p]))
                point = topo.point_of.get(key)
                if point is None or not np.isfinite(best[point]):
                    continue
                pin_cg_cell[design.pin_cell[p]] += best[point]
        return pin_cg_cell

    def _segment_path_congestion(
        self, cg: np.ndarray, ax: int, ay: int, bx: int, by: int
    ) -> float:
        """Min over L/Z candidate paths of the max Gcell congestion."""
        if ax == bx and ay == by:
            return float(cg[ax, ay])
        if ax == bx:
            lo, hi = sorted((ay, by))
            return float(cg[ax, lo : hi + 1].max())
        if ay == by:
            lo, hi = sorted((ax, bx))
            return float(cg[lo : hi + 1, ay].max())
        xlo, xhi = sorted((ax, bx))
        ylo, yhi = sorted((ay, by))
        best = min(
            # L with corner at (bx, ay): H run at ay, V run at bx.
            max(cg[xlo : xhi + 1, ay].max(), cg[bx, ylo : yhi + 1].max()),
            # L with corner at (ax, by).
            max(cg[xlo : xhi + 1, by].max(), cg[ax, ylo : yhi + 1].max()),
        )
        for mid in _interior_samples(xlo, xhi, self.params.z_samples):
            value = max(
                cg[min(ax, mid) : max(ax, mid) + 1, ay].max(),
                cg[mid, ylo : yhi + 1].max(),
                cg[min(mid, bx) : max(mid, bx) + 1, by].max(),
            )
            best = min(best, value)
        for mid in _interior_samples(ylo, yhi, self.params.z_samples):
            value = max(
                cg[ax, min(ay, mid) : max(ay, mid) + 1].max(),
                cg[xlo : xhi + 1, mid].max(),
                cg[bx, min(mid, by) : max(mid, by) + 1].max(),
            )
            best = min(best, value)
        return float(best)


def _interior_samples(lo: int, hi: int, count: int) -> list:
    interior = range(lo + 1, hi)
    if len(interior) <= count:
        return list(interior)
    step = len(interior) / (count + 1)
    return [interior[int(step * (i + 1))] for i in range(count)]


def _corner_max(grid, grid_map, xlo, ylo, xhi, yhi) -> np.ndarray:
    """Max of a Gcell map over the rectangle corners of each cell.

    Standard cells rarely span more than 2x2 Gcells, so sampling the four
    corner Gcells realizes Eq. (9)'s max over overlapped Gcells.
    """
    gx0, gy0 = grid.gcell_of(xlo, ylo)
    gx1, gy1 = grid.gcell_of(xhi, yhi)
    return np.maximum.reduce(
        [
            grid_map[gx0, gy0],
            grid_map[gx1, gy0],
            grid_map[gx0, gy1],
            grid_map[gx1, gy1],
        ]
    )
