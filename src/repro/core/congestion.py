"""The congestion estimator: capacity + demand + expansion => Cg maps.

This is the routability optimizer's eye (paper Sec. III-A): a fast 2D
congestion map built by imitating routing detours and clustered-cell
spreading, *without* running a global router.  The signed congestion
(Eq. 11) is deliberately not clipped at zero — the features keep the
deviation between the estimate and the eventual router result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..netlist.design import Design
from ..router.grid import RoutingGrid
from .capacity import CapacityModel
from .demand import DemandResult, accumulate_demand, build_topologies
from .expansion import ExpansionParams, expand_demand


@dataclass
class EstimatorParams:
    """Knobs of the congestion estimator.

    Attributes:
        pin_penalty: local-net demand per pin (Sec. III-A2).
        expansion: detour-imitation parameters (Sec. III-A3).
        expand: whether to run the expansion at all (ablation A3).
    """

    pin_penalty: float = 0.05
    expansion: ExpansionParams = field(default_factory=ExpansionParams)
    expand: bool = True


@dataclass
class CongestionMap:
    """Signed congestion maps on the Gcell grid.

    ``cg_h`` / ``cg_v`` follow Eq. (11):
    ``(Dmd - Cap) / max(Cap, 1)`` — negative where resources are spare.
    ``cg`` combines them per Eq. (10).
    """

    grid: RoutingGrid
    dmd_h: np.ndarray
    dmd_v: np.ndarray
    cg_h: np.ndarray
    cg_v: np.ndarray
    cg: np.ndarray
    pin_count: np.ndarray
    pin_density: np.ndarray

    def overflow_ratio(self) -> tuple:
        """Estimated ``(hof, vof)`` in percent, mirroring the router."""
        over_h = np.maximum(self.dmd_h - self.grid.cap_h, 0.0).sum()
        over_v = np.maximum(self.dmd_v - self.grid.cap_v, 0.0).sum()
        return (
            float(100.0 * over_h / max(self.grid.cap_h.sum(), 1e-12)),
            float(100.0 * over_v / max(self.grid.cap_v.sum(), 1e-12)),
        )


def combine_congestion(cg_h: np.ndarray, cg_v: np.ndarray) -> np.ndarray:
    """Paper Eq. (10): per-Gcell combination of directional congestion."""
    opposite = cg_h * cg_v < 0.0
    return np.where(opposite, np.maximum(cg_h, cg_v), cg_h + cg_v)


class CongestionEstimator:
    """Routing-detour-imitation-based congestion estimation."""

    def __init__(self, design: Design, params: EstimatorParams | None = None) -> None:
        self.design = design
        self.params = params or EstimatorParams()
        self._capacity = CapacityModel(design)
        self._topology_cache: dict = {}

    @property
    def grid(self) -> RoutingGrid:
        return self._capacity.grid

    def estimate(self) -> tuple:
        """Estimate congestion at the design's current placement.

        Returns:
            ``(congestion_map, topologies, demand_result)`` — topologies
            and the raw demand are reused by the feature extractor.
        """
        with obs.span("congestion/estimate") as est_span:
            grid = self.grid
            topologies = build_topologies(self.design, grid, cache=self._topology_cache)
            demand = accumulate_demand(
                self.design, grid, topologies, self.params.pin_penalty
            )
            if self.params.expand:
                expand_demand(grid, demand, self.params.expansion)
            cmap = self._finish(grid, demand)
            est_hof, est_vof = cmap.overflow_ratio()
            est_span.set(nets=len(topologies), est_hof=est_hof, est_vof=est_vof)
        return cmap, topologies, demand

    def _finish(self, grid: RoutingGrid, demand: DemandResult) -> CongestionMap:
        cg_h = (demand.dmd_h - grid.cap_h) / np.maximum(grid.cap_h, 1.0)
        cg_v = (demand.dmd_v - grid.cap_v) / np.maximum(grid.cap_v, 1.0)
        cg = combine_congestion(cg_h, cg_v)
        tech = self.design.technology
        sites_per_gcell = (grid.gcell_w * grid.gcell_h) / (
            tech.site_width * tech.row_height
        )
        pin_density = demand.pin_count / max(sites_per_gcell, 1e-12)
        return CongestionMap(
            grid=grid,
            dmd_h=demand.dmd_h,
            dmd_v=demand.dmd_v,
            cg_h=cg_h,
            cg_v=cg_v,
            cg=cg,
            pin_count=demand.pin_count,
            pin_density=pin_density,
        )
