"""Strategy parameters of the routability optimizer (paper Sec. III-B/C/D).

Every knob the paper marks as a *strategy parameter* lives here, together
with the exploration search space and the relevance groups used by the
grouped exploration of Algorithm 3.  Instead of manual tuning, these are
meant to be explored with :mod:`repro.core.exploration`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..tpe import Choice, QUniform, Space, Uniform


@dataclass
class StrategyParams:
    """All strategy parameters of PUFFER.

    Padding formula (Eq. 14): ``Pad(c) = log(max(sum_i alpha_i f_i + beta,
    1)) * mu`` over the five features of
    :data:`repro.core.features.FEATURE_NAMES`.

    Attributes:
        alpha_local_cg..alpha_pin_cg: feature weights ``alpha_i``.
        beta: affine offset in Eq. (14).
        mu: padding magnitude (database units per unit log-score).
        zeta: recycling-effort parameter of Eq. (15).
        pu_low, pu_high: padding-utilization schedule bounds of Eq. (16).
        xi: maximum routability-optimization rounds.
        tau: density-overflow trigger threshold.
        eta: budget-saturation threshold; once the padding area fills
            ``eta`` of the allowed budget the padding has converged and
            no further rounds fire.
        theta: legalization staircase parameter of Eq. (17).
        kernel_size: CNN-inspired mean-filter size (Gcells).
        legal_area_cap: padded-area cap in legalization (Sec. III-D: 5 %).
        legalizer: which legalization algorithm consumes the padding — an
            example of a *discrete* strategy choice.
    """

    alpha_local_cg: float = 2.0
    alpha_local_pin: float = 0.5
    alpha_around_cg: float = 2.0
    alpha_around_pin: float = 0.5
    alpha_pin_cg: float = 0.3
    beta: float = -1.0
    mu: float = 1.5
    zeta: float = 2.0
    pu_low: float = 0.10
    pu_high: float = 0.35
    xi: int = 6
    tau: float = 0.25
    eta: float = 0.95
    theta: float = 4.0
    kernel_size: int = 3
    legal_area_cap: float = 0.05
    legalizer: str = "abacus"

    def alphas(self) -> list:
        """Feature weights in :data:`FEATURE_NAMES` order."""
        return [
            self.alpha_local_cg,
            self.alpha_local_pin,
            self.alpha_around_cg,
            self.alpha_around_pin,
            self.alpha_pin_cg,
        ]

    def replaced(self, **kwargs) -> "StrategyParams":
        """A copy with the given fields replaced."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(kwargs)
        return StrategyParams(**values)

    def to_dict(self) -> dict:
        """JSON-safe wire dict (see :mod:`repro.schema`)."""
        from ..schema import dataclass_to_dict

        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, values: dict) -> "StrategyParams":
        """Build params from an exploration configuration or wire dict.

        Unknown keys raise; missing keys keep their defaults.  ``xi`` and
        ``kernel_size`` are coerced to int.  A ``schema_version`` key
        (stamped by :meth:`to_dict`) is validated and stripped.
        """
        from ..schema import SCHEMA_VERSION, SchemaError

        values = dict(values)
        version = values.pop("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise SchemaError(
                f"StrategyParams schema_version {version!r} is not supported "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(values) - known
        if unknown:
            raise KeyError(f"unknown strategy parameters: {sorted(unknown)}")
        params = cls(**values)
        params.xi = int(round(params.xi))
        params.kernel_size = int(round(params.kernel_size))
        return params


def default_space() -> Space:
    """The initial exploration ranges (Algorithm 3 line 1)."""
    return Space(
        [
            Uniform("alpha_local_cg", 0.0, 4.0),
            Uniform("alpha_local_pin", 0.0, 4.0),
            Uniform("alpha_around_cg", 0.0, 4.0),
            Uniform("alpha_around_pin", 0.0, 4.0),
            Uniform("alpha_pin_cg", 0.0, 2.0),
            Uniform("beta", -3.0, 1.0),
            Uniform("mu", 0.5, 4.0),
            Uniform("zeta", 0.5, 8.0),
            Uniform("pu_low", 0.02, 0.3),
            Uniform("pu_high", 0.15, 0.6),
            QUniform("xi", 3, 10, q=1),
            Uniform("tau", 0.15, 0.4),
            Uniform("eta", 0.7, 1.0),
            QUniform("theta", 2, 8, q=1),
            QUniform("kernel_size", 1, 7, q=1),
            Choice("legalizer", ("abacus", "tetris")),
        ]
    )


#: Parameter groups by relevance (Algorithm 3 line 3).  Parameters with
#: strong interactions share a group and are explored together while the
#: others stay fixed at their range midpoints.
PARAM_GROUPS = {
    "formula": [
        "alpha_local_cg",
        "alpha_local_pin",
        "alpha_around_cg",
        "alpha_around_pin",
        "alpha_pin_cg",
        "beta",
        "mu",
    ],
    "schedule": ["tau", "eta", "xi", "pu_low", "pu_high"],
    "smoothing": ["zeta", "kernel_size"],
    "legalization": ["theta", "legalizer"],
}
