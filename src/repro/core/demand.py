"""Topology-based probabilistic routing demand (paper Sec. III-A2).

Every net is decomposed by RSMT into two-point nets over Gcell
coordinates.  I-shaped two-point nets consume a unit of directional
demand in every Gcell they pass; L-shaped ones spread an *average* demand
over their bounding box (each Gcell gets ``1/(dy+1)`` horizontal and
``1/(dx+1)`` vertical demand, the expectation over the two L routes).  A
pin penalty captures the demand of local nets whose pins share a Gcell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import kernels, obs
from ..netlist.design import Design
from ..router.grid import RoutingGrid
from ..rsmt import build_rsmt_batch


@dataclass
class NetTopology:
    """RSMT decomposition of one net on the Gcell grid.

    Attributes:
        net: net index in the design.
        gx, gy: integer Gcell coordinates of the tree points.
        is_pin: per-point flag (``False`` for Steiner points).
        edges: ``(k, 2)`` point-index pairs (the two-point nets).
        point_of: map from a pin Gcell ``(gx, gy)`` to its point index.
    """

    net: int
    gx: np.ndarray
    gy: np.ndarray
    is_pin: np.ndarray
    edges: np.ndarray
    point_of: dict = field(default_factory=dict)


@dataclass
class ISegment:
    """A straight two-point net, the unit the detour expansion acts on.

    ``horizontal`` runs along x at row ``fixed``; endpoints at
    ``lo <= hi``.  ``lo_is_pin`` / ``hi_is_pin`` record the endpoint kinds
    (Steiner endpoints receive extra perpendicular detour demand when the
    segment is expanded; pins do not, because cells can move).
    """

    horizontal: bool
    fixed: int
    lo: int
    hi: int
    lo_is_pin: bool
    hi_is_pin: bool


def build_topologies(
    design: Design, grid: RoutingGrid, cache: dict | None = None
) -> list:
    """Per-net RSMT topologies at the current placement.

    Args:
        design: the placed design.
        grid: the Gcell grid.
        cache: optional per-net memo ``net -> (key, NetTopology)``.  Nets
            whose pin Gcells did not move since the cached round reuse
            their topology — between consecutive padding rounds most
            nets qualify, which makes repeated estimation cheap.
    """
    with obs.span("congestion/topologies") as span:
        px, py = design.pin_positions()
        pgx, pgy = grid.gcell_of(px, py)
        flat = pgx * grid.ny + pgy
        m = design.num_nets
        # Per-net Gcell dedup in one global sort: composite keys
        # (net, gcell) sort duplicates together, so each net's unique
        # Gcells come out as a contiguous ascending run — the same
        # values the historical per-net ``np.unique`` produced.
        deg = np.diff(design.net_start)
        net_of = np.repeat(np.arange(m, dtype=np.int64), deg)
        span_sz = np.int64(grid.nx) * np.int64(grid.ny)
        skey = np.sort(net_of * span_sz + flat[design.net_pins])
        keep = np.ones(len(skey), dtype=bool)
        keep[1:] = skey[1:] != skey[:-1]
        ukey = skey[keep]
        unet = ukey // span_sz
        ucell = ukey % span_sz
        counts = np.bincount(unet, minlength=m)
        ustart = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=ustart[1:])
        # Nets with < 2 distinct Gcells are local: pin penalty only.
        eligible = np.flatnonzero(counts >= 2)

        reused = 0
        slots = []  # (net, cached NetTopology | None, cells.tobytes())
        pending = []
        for net in eligible.tolist():
            cells = ucell[ustart[net] : ustart[net + 1]]
            key = cells.tobytes()
            if cache is not None:
                hit = cache.get(net)
                if hit is not None and hit[0] == key:
                    slots.append((net, hit[1], key))
                    reused += 1
                    continue
            pending.append(net)
            slots.append((net, None, key))

        built = []
        if pending:
            pend = np.asarray(pending, dtype=np.int64)
            lens = counts[pend]
            bstart = np.zeros(len(pend) + 1, dtype=np.int64)
            np.cumsum(lens, out=bstart[1:])
            gather = np.repeat(ustart[pend] - bstart[:-1], lens) + np.arange(
                bstart[-1]
            )
            cells_sel = ucell[gather]
            built = build_rsmt_batch(
                (cells_sel // grid.ny).astype(np.float64),
                (cells_sel % grid.ny).astype(np.float64),
                bstart,
            )

        topologies = []
        built_iter = iter(built)
        for net, cached_topo, key in slots:
            if cached_topo is not None:
                topologies.append(cached_topo)
                continue
            topo = next(built_iter)
            gx = np.round(topo.x).astype(np.int64)
            gy = np.round(topo.y).astype(np.int64)
            point_of = {
                (int(gx[i]), int(gy[i])): i
                for i in range(len(gx))
                if topo.is_pin[i]
            }
            net_topo = NetTopology(
                net, gx, gy, topo.is_pin.copy(), topo.edges.copy(), point_of
            )
            if cache is not None:
                cache[net] = (key, net_topo)
            topologies.append(net_topo)
        span.set(nets=len(topologies), cached=reused)
    return topologies


@dataclass
class DemandResult:
    """Demand maps plus the I-segment inventory used by the expansion."""

    dmd_h: np.ndarray
    dmd_v: np.ndarray
    pin_count: np.ndarray
    i_segments: list


def accumulate_demand(
    design: Design,
    grid: RoutingGrid,
    topologies: list,
    pin_penalty: float = 0.05,
) -> DemandResult:
    """Probabilistic demand maps for the given topologies.

    Args:
        design: provides pin positions for the pin penalty.
        grid: the Gcell grid.
        topologies: output of :func:`build_topologies`.
        pin_penalty: demand added to both directions of each pin's Gcell.

    Returns:
        A :class:`DemandResult`; ``pin_count`` is the raw per-Gcell pin
        count (reused by the pin-density features).
    """
    with obs.span("congestion/demand", nets=len(topologies)) as span:
        ax, ay, bx, by, a_pin, b_pin = _edge_endpoints(topologies)
        xlo = np.minimum(ax, bx)
        xhi = np.maximum(ax, bx)
        ylo = np.minimum(ay, by)
        yhi = np.maximum(ay, by)
        dx = xhi - xlo
        dy = yhi - ylo
        # Every edge is a weighted rectangle on each map: straight edges
        # carry unit demand along their row/column (the 1/(d+1) weight
        # degenerates to 1); L-shaped edges spread the average over the
        # bbox.  A zero extent contributes nothing in that direction.
        mh = dx > 0
        mv = dy > 0
        dmd_h = kernels.rect_add(
            grid.nx, grid.ny,
            xlo[mh], xhi[mh], ylo[mh], yhi[mh], 1.0 / (dy[mh] + 1.0),
        )
        dmd_v = kernels.rect_add(
            grid.nx, grid.ny,
            xlo[mv], xhi[mv], ylo[mv], yhi[mv], 1.0 / (dx[mv] + 1.0),
        )
        # Straight edges, in edge order, feed the detour expansion.
        straight = np.flatnonzero(mh ^ mv)
        horiz = mh[straight]
        a_first = np.where(
            horiz, ax[straight] < bx[straight], ay[straight] < by[straight]
        )
        i_segments = [
            ISegment(hz, f, lo, hi, lp, hp)
            for hz, f, lo, hi, lp, hp in zip(
                horiz.tolist(),
                np.where(horiz, ylo[straight], xlo[straight]).tolist(),
                np.where(horiz, xlo[straight], ylo[straight]).tolist(),
                np.where(horiz, xhi[straight], yhi[straight]).tolist(),
                np.where(a_first, a_pin[straight], b_pin[straight]).tolist(),
                np.where(a_first, b_pin[straight], a_pin[straight]).tolist(),
            )
        ]
        pin_count = np.zeros((grid.nx, grid.ny))
        if design.num_pins:
            px, py = design.pin_positions()
            pgx, pgy = grid.gcell_of(px, py)
            np.add.at(pin_count, (pgx, pgy), 1.0)
            if pin_penalty > 0:
                dmd_h += pin_penalty * pin_count
                dmd_v += pin_penalty * pin_count
        span.set(segments=len(i_segments), backend=kernels.current())
    return DemandResult(dmd_h, dmd_v, pin_count, i_segments)


def _edge_endpoints(topologies: list) -> tuple:
    """Endpoint Gcell coordinates and pin flags of every two-point net,
    concatenated across topologies in edge order."""
    ax, ay, bx, by, a_pin, b_pin = [], [], [], [], [], []
    for topo in topologies:
        if len(topo.edges) == 0:
            continue
        a = topo.edges[:, 0]
        b = topo.edges[:, 1]
        ax.append(topo.gx[a])
        ay.append(topo.gy[a])
        bx.append(topo.gx[b])
        by.append(topo.gy[b])
        a_pin.append(topo.is_pin[a])
        b_pin.append(topo.is_pin[b])
    if not ax:
        empty = np.zeros(0, dtype=np.int64)
        flags = np.zeros(0, dtype=bool)
        return empty, empty, empty, empty, flags, flags
    return (
        np.concatenate(ax),
        np.concatenate(ay),
        np.concatenate(bx),
        np.concatenate(by),
        np.concatenate(a_pin),
        np.concatenate(b_pin),
    )
