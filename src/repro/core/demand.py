"""Topology-based probabilistic routing demand (paper Sec. III-A2).

Every net is decomposed by RSMT into two-point nets over Gcell
coordinates.  I-shaped two-point nets consume a unit of directional
demand in every Gcell they pass; L-shaped ones spread an *average* demand
over their bounding box (each Gcell gets ``1/(dy+1)`` horizontal and
``1/(dx+1)`` vertical demand, the expectation over the two L routes).  A
pin penalty captures the demand of local nets whose pins share a Gcell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..netlist.design import Design
from ..router.grid import RoutingGrid
from ..rsmt import build_rsmt


@dataclass
class NetTopology:
    """RSMT decomposition of one net on the Gcell grid.

    Attributes:
        net: net index in the design.
        gx, gy: integer Gcell coordinates of the tree points.
        is_pin: per-point flag (``False`` for Steiner points).
        edges: ``(k, 2)`` point-index pairs (the two-point nets).
        point_of: map from a pin Gcell ``(gx, gy)`` to its point index.
    """

    net: int
    gx: np.ndarray
    gy: np.ndarray
    is_pin: np.ndarray
    edges: np.ndarray
    point_of: dict = field(default_factory=dict)


@dataclass
class ISegment:
    """A straight two-point net, the unit the detour expansion acts on.

    ``horizontal`` runs along x at row ``fixed``; endpoints at
    ``lo <= hi``.  ``lo_is_pin`` / ``hi_is_pin`` record the endpoint kinds
    (Steiner endpoints receive extra perpendicular detour demand when the
    segment is expanded; pins do not, because cells can move).
    """

    horizontal: bool
    fixed: int
    lo: int
    hi: int
    lo_is_pin: bool
    hi_is_pin: bool


def build_topologies(
    design: Design, grid: RoutingGrid, cache: dict | None = None
) -> list:
    """Per-net RSMT topologies at the current placement.

    Args:
        design: the placed design.
        grid: the Gcell grid.
        cache: optional per-net memo ``net -> (key, NetTopology)``.  Nets
            whose pin Gcells did not move since the cached round reuse
            their topology — between consecutive padding rounds most
            nets qualify, which makes repeated estimation cheap.
    """
    with obs.span("congestion/topologies") as span:
        px, py = design.pin_positions()
        pgx, pgy = grid.gcell_of(px, py)
        flat = pgx * grid.ny + pgy
        topologies = []
        reused = 0
        for net in range(design.num_nets):
            pins = design.pins_of_net(net)
            if len(pins) < 2:
                continue
            cells = np.unique(flat[pins])
            if len(cells) < 2:
                # All pins share one Gcell: a local net, pin penalty only.
                continue
            key = cells.tobytes()
            if cache is not None:
                hit = cache.get(net)
                if hit is not None and hit[0] == key:
                    topologies.append(hit[1])
                    reused += 1
                    continue
            gx_pts = cells // grid.ny
            gy_pts = cells % grid.ny
            topo = build_rsmt(gx_pts.astype(float), gy_pts.astype(float))
            gx = np.round(topo.x).astype(np.int64)
            gy = np.round(topo.y).astype(np.int64)
            point_of = {
                (int(gx[i]), int(gy[i])): i
                for i in range(len(gx))
                if topo.is_pin[i]
            }
            net_topo = NetTopology(
                net, gx, gy, topo.is_pin.copy(), topo.edges.copy(), point_of
            )
            if cache is not None:
                cache[net] = (key, net_topo)
            topologies.append(net_topo)
        span.set(nets=len(topologies), cached=reused)
    return topologies


@dataclass
class DemandResult:
    """Demand maps plus the I-segment inventory used by the expansion."""

    dmd_h: np.ndarray
    dmd_v: np.ndarray
    pin_count: np.ndarray
    i_segments: list


def accumulate_demand(
    design: Design,
    grid: RoutingGrid,
    topologies: list,
    pin_penalty: float = 0.05,
) -> DemandResult:
    """Probabilistic demand maps for the given topologies.

    Args:
        design: provides pin positions for the pin penalty.
        grid: the Gcell grid.
        topologies: output of :func:`build_topologies`.
        pin_penalty: demand added to both directions of each pin's Gcell.

    Returns:
        A :class:`DemandResult`; ``pin_count`` is the raw per-Gcell pin
        count (reused by the pin-density features).
    """
    with obs.span("congestion/demand", nets=len(topologies)) as span:
        dmd_h = np.zeros((grid.nx, grid.ny))
        dmd_v = np.zeros((grid.nx, grid.ny))
        i_segments = []
        for topo in topologies:
            gx, gy, is_pin = topo.gx, topo.gy, topo.is_pin
            for a, b in topo.edges:
                ax, ay, bx, by = int(gx[a]), int(gy[a]), int(gx[b]), int(gy[b])
                if ay == by and ax != bx:
                    lo, hi = (ax, bx) if ax < bx else (bx, ax)
                    dmd_h[lo : hi + 1, ay] += 1.0
                    lo_pin, hi_pin = (is_pin[a], is_pin[b]) if ax < bx else (is_pin[b], is_pin[a])
                    i_segments.append(ISegment(True, ay, lo, hi, bool(lo_pin), bool(hi_pin)))
                elif ax == bx and ay != by:
                    lo, hi = (ay, by) if ay < by else (by, ay)
                    dmd_v[ax, lo : hi + 1] += 1.0
                    lo_pin, hi_pin = (is_pin[a], is_pin[b]) if ay < by else (is_pin[b], is_pin[a])
                    i_segments.append(ISegment(False, ax, lo, hi, bool(lo_pin), bool(hi_pin)))
                elif ax != bx and ay != by:
                    xlo, xhi = (ax, bx) if ax < bx else (bx, ax)
                    ylo, yhi = (ay, by) if ay < by else (by, ay)
                    dx = xhi - xlo
                    dy = yhi - ylo
                    dmd_h[xlo : xhi + 1, ylo : yhi + 1] += 1.0 / (dy + 1)
                    dmd_v[xlo : xhi + 1, ylo : yhi + 1] += 1.0 / (dx + 1)
        pin_count = np.zeros((grid.nx, grid.ny))
        if design.num_pins:
            px, py = design.pin_positions()
            pgx, pgy = grid.gcell_of(px, py)
            np.add.at(pin_count, (pgx, pgy), 1.0)
            if pin_penalty > 0:
                dmd_h += pin_penalty * pin_count
                dmd_v += pin_penalty * pin_count
        span.set(segments=len(i_segments))
    return DemandResult(dmd_h, dmd_v, pin_count, i_segments)
