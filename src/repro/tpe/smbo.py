"""Sequential model-based global optimization (SMBO) loop.

Drives a :class:`repro.tpe.tpe.TPESampler` against an expensive black-box
objective, with the two termination criteria of paper Algorithm 2: a hard
evaluation budget and an early-stop patience on non-improving results.

The loop optionally evaluates in *batches*: ``batch_size`` candidates
are suggested against the same observation set, evaluated together
(concurrently, when a parallel ``evaluator`` is supplied), and then all
observed in suggestion order.  With ``batch_size=1`` the suggest →
evaluate → observe sequence — including every RNG draw — is identical
to the historical strictly-serial loop, so serial results are
bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from .space import Space
from .tpe import TPESampler


@dataclass
class Trial:
    """One objective evaluation."""

    params: dict
    loss: float
    index: int


@dataclass
class SMBOResult:
    """Outcome of :func:`minimize`.

    Attributes:
        best: the lowest-loss trial.
        trials: every trial in evaluation order.
        stopped_early: ``True`` when the patience criterion fired (the
            return flag of paper Algorithm 2).
    """

    best: Trial
    trials: list = field(default_factory=list)
    stopped_early: bool = False

    def observations(self) -> list:
        """``(params, loss)`` pairs for feeding back into a sampler."""
        return [(t.params, t.loss) for t in self.trials]


def minimize(
    objective,
    space: Space,
    max_evals: int = 40,
    patience: int = 10,
    sampler: TPESampler | None = None,
    rng=None,
    warm_start: list | None = None,
    batch_size: int = 1,
    evaluator=None,
) -> SMBOResult:
    """Minimize ``objective`` over ``space`` with TPE suggestions.

    Args:
        objective: callable ``params_dict -> float`` (lower is better).
        space: search space.
        max_evals: evaluation budget (``TC`` in Algorithm 2).
        patience: stop after this many non-improving evaluations
            (``EC`` in Algorithm 2).
        sampler: TPE sampler (default-configured when omitted).
        rng: ``numpy.random.Generator`` or seed.
        warm_start: prior ``(params, loss)`` observations to seed the
            sampler without re-evaluating them.
        batch_size: candidates suggested per round before observing.
            ``1`` reproduces the serial loop bit-identically; larger
            values trade some sequential information for concurrency.
        evaluator: optional callable ``list[params] -> list[loss]``
            evaluating one batch (e.g. a process-pool map); defaults to
            calling ``objective`` inline per candidate.

    Returns:
        An :class:`SMBOResult`; raises ``ValueError`` on an empty budget.
    """
    if max_evals < 1:
        raise ValueError("max_evals must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    sampler = sampler or TPESampler()
    rng = np.random.default_rng(rng)
    observations = list(warm_start or [])
    trials = []
    best = None
    since_best = 0
    stopped_early = False
    while len(trials) < max_evals and not stopped_early:
        k = min(batch_size, max_evals - len(trials))
        batch = [sampler.suggest(space, observations, rng) for _ in range(k)]
        if evaluator is None:
            losses = []
            for offset, params in enumerate(batch):
                with obs.span("tpe/trial", index=len(trials) + offset) as trial_span:
                    loss = float(objective(params))
                    trial_span.set(loss=loss)
                losses.append(loss)
        else:
            # A size-1 batch is a single trial: name its span so serial
            # traces look the same with or without an evaluator attached.
            single = len(batch) == 1
            with obs.span(
                "tpe/trial" if single else "tpe/batch",
                size=len(batch), index=len(trials),
            ) as batch_span:
                losses = [float(loss) for loss in evaluator(batch)]
                if single and len(losses) == 1:
                    batch_span.set(loss=losses[0])
            if len(losses) != len(batch):
                raise ValueError("evaluator returned a mismatched batch")
            for offset, loss in enumerate(losses):
                obs.event("tpe/trial", index=len(trials) + offset, loss=loss)
        loss_hist = obs.histogram("tpe/loss")
        for params, loss in zip(batch, losses):
            loss_hist.observe(loss)
            trial = Trial(params=params, loss=loss, index=len(trials))
            trials.append(trial)
            observations.append((params, loss))
            if best is None or loss < best.loss - 1e-15:
                best = trial
                since_best = 0
            else:
                since_best += 1
            if since_best >= patience:
                stopped_early = True
                break
    return SMBOResult(best=best, trials=trials, stopped_early=stopped_early)
