"""Cross-design transfer priors for strategy exploration.

Exploration on a new design normally starts blind: the TPE sampler
draws ``n_startup`` uniformly random configurations before its good/bad
split has anything to model.  But completed explorations on *other*
designs already know which regions of the strategy space tend to route
well, and the paper's experiment A4 shows strategies transfer.  This
module persists completed trials through a
:class:`repro.runtime.ArtifactCache` and replays them as ``warm_start``
observations (see :func:`repro.tpe.minimize`) — seeding the sampler
without spending a single evaluation.

Layout: one cache entry per *search-space signature* (so priors from an
incompatible space are never replayed), holding a dict of
``feature key -> [(params, loss), ...]`` buckets keyed by coarse design
features (log2-bucketed cell/net counts, rounded utilization).  Loading
prefers the bucket of the matching design class, then falls back to the
other buckets, best losses first.
"""

from __future__ import annotations

import math

from ..runtime import MISSING, stable_hash

#: Per-bucket retention cap: the best observations by loss are kept.
BUCKET_LIMIT = 200


def space_signature(space) -> list:
    """A JSON-safe descriptor identifying a search space's shape.

    Two spaces share priors only when every dimension matches in kind,
    name, and bounds/options — replaying an observation into a space it
    was not drawn from would teach the sampler the wrong geometry.
    """
    signature = []
    for dim in space:
        entry = {"kind": type(dim).__name__, "name": dim.name}
        for attr in ("lo", "hi", "q"):
            if hasattr(dim, attr):
                entry[attr] = float(getattr(dim, attr))
        if hasattr(dim, "options"):
            entry["options"] = [str(option) for option in dim.options]
        signature.append(entry)
    return signature


def design_features(design) -> dict:
    """Coarse features bucketing designs with similar routability.

    Buckets are deliberately wide (log2 on counts, 0.1 steps on
    utilization): priors only *seed* the sampler, so near-miss matches
    are still far better than starting blind.
    """
    die = design.die
    die_area = max((die.xhi - die.xlo) * (die.yhi - die.ylo), 1e-12)
    return {
        "cells_log2": int(round(math.log2(max(design.num_cells, 1)))),
        "nets_log2": int(round(math.log2(max(design.num_nets, 1)))),
        "utilization": round(design.movable_area / die_area, 1),
    }


class TransferPriors:
    """Persisted exploration observations, keyed by (space, features).

    Args:
        cache: an :class:`repro.runtime.ArtifactCache` (typically the
            job server's result cache, so priors accumulate wherever
            explorations run).
    """

    def __init__(self, cache) -> None:
        self.cache = cache

    def _key(self, space) -> str:
        return stable_hash(
            {"kind": "explore-priors", "space": space_signature(space)}
        )

    def _feature_key(self, features: dict) -> str:
        return stable_hash(features)

    def load(self, space, features: dict, limit: int = 32) -> list:
        """Prior ``(params, loss)`` observations for this space.

        Observations from the matching feature bucket come first; other
        buckets fill the remainder, each sorted best-loss-first.
        Returns at most ``limit`` entries (``[]`` when none exist).
        """
        index = self.cache.get(self._key(space))
        if index is MISSING or not isinstance(index, dict):
            return []
        feature_key = self._feature_key(features)
        observations = []
        own = index.get(feature_key, [])
        observations.extend(sorted(own, key=lambda entry: entry[1]))
        for key in sorted(k for k in index if k != feature_key):
            observations.extend(sorted(index[key], key=lambda entry: entry[1]))
        return [
            (dict(params), float(loss))
            for params, loss in observations[:max(limit, 0)]
        ]

    def save(self, space, features: dict, observations: list) -> None:
        """Merge completed ``(params, loss)`` trials into the store.

        Read-modify-write on the space's index entry; the bucket keeps
        its :data:`BUCKET_LIMIT` best observations.  Failed trials
        (penalty losses) carry no transferable signal and are dropped.
        """
        from ..core.exploration import FAILED_TRIAL_LOSS

        keep = [
            (dict(params), float(loss))
            for params, loss in observations
            if float(loss) < FAILED_TRIAL_LOSS
        ]
        if not keep:
            return
        key = self._key(space)
        index = self.cache.get(key)
        if index is MISSING or not isinstance(index, dict):
            index = {}
        feature_key = self._feature_key(features)
        bucket = list(index.get(feature_key, []))
        bucket.extend(keep)
        bucket.sort(key=lambda entry: entry[1])
        index[feature_key] = bucket[:BUCKET_LIMIT]
        self.cache.put(key, index)


__all__ = [
    "BUCKET_LIMIT",
    "TransferPriors",
    "design_features",
    "space_signature",
]
