"""SMBO with the tree-structured Parzen estimator (Bergstra et al.)."""

from .smbo import SMBOResult, Trial, minimize
from .space import Choice, LogUniform, QUniform, Space, Uniform
from .tpe import TPESampler
from .transfer import TransferPriors, design_features, space_signature

__all__ = [
    "Choice",
    "LogUniform",
    "QUniform",
    "SMBOResult",
    "Space",
    "TPESampler",
    "TransferPriors",
    "Trial",
    "Uniform",
    "design_features",
    "minimize",
    "space_signature",
]
