"""SMBO with the tree-structured Parzen estimator (Bergstra et al.)."""

from .smbo import SMBOResult, Trial, minimize
from .space import Choice, LogUniform, QUniform, Space, Uniform
from .tpe import TPESampler

__all__ = [
    "Choice",
    "LogUniform",
    "QUniform",
    "SMBOResult",
    "Space",
    "TPESampler",
    "Trial",
    "Uniform",
    "minimize",
]
