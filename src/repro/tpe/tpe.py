"""The tree-structured Parzen estimator of Bergstra et al. [19].

Observations ``(x, loss)`` are split at the ``gamma`` loss quantile into a
*good* set and a *bad* set.  Each numeric dimension gets two Parzen
(kernel-density) estimators, ``l(x)`` over the good values and ``g(x)``
over the bad ones; candidates drawn from ``l`` are ranked by the expected
improvement surrogate ``l(x)/g(x)``.  Categorical dimensions use smoothed
empirical frequencies instead of kernels.
"""

from __future__ import annotations

import math

import numpy as np

from .space import Choice, Space


class TPESampler:
    """Suggests configurations from accumulated observations.

    Args:
        gamma: quantile of observations labelled "good".
        n_candidates: candidates drawn from ``l`` per suggestion.
        n_startup: random suggestions before the estimator activates.
        prior_weight: weight of the uniform prior kernel.
    """

    def __init__(
        self,
        gamma: float = 0.25,
        n_candidates: int = 24,
        n_startup: int = 5,
        prior_weight: float = 1.0,
    ) -> None:
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        self.gamma = gamma
        self.n_candidates = n_candidates
        self.n_startup = n_startup
        self.prior_weight = prior_weight

    def suggest(self, space: Space, observations: list, rng) -> dict:
        """Next configuration to evaluate.

        Args:
            space: the search space.
            observations: list of ``(params_dict, loss)`` pairs.
            rng: ``numpy.random.Generator``.
        """
        if len(observations) < self.n_startup:
            return space.sample(rng)
        losses = np.asarray([loss for _, loss in observations], dtype=np.float64)
        n_good = max(int(math.ceil(self.gamma * len(losses))), 1)
        order = np.argsort(losses, kind="stable")
        good_idx = set(order[:n_good].tolist())
        good = [observations[i][0] for i in range(len(observations)) if i in good_idx]
        bad = [observations[i][0] for i in range(len(observations)) if i not in good_idx]

        best_candidate = None
        best_score = -np.inf
        for _ in range(self.n_candidates):
            candidate = {}
            score = 0.0
            for dim in space:
                good_vals = [g[dim.name] for g in good]
                bad_vals = [b[dim.name] for b in bad]
                if isinstance(dim, Choice):
                    value = self._sample_categorical(dim, good_vals, rng)
                    score += self._categorical_log_ratio(dim, value, good_vals, bad_vals)
                else:
                    value = self._sample_parzen(dim, good_vals, rng)
                    score += self._parzen_log_ratio(dim, value, good_vals, bad_vals)
                candidate[dim.name] = value
            if score > best_score:
                best_score = score
                best_candidate = candidate
        return best_candidate

    # ------------------------------------------------------------------
    # Numeric dimensions
    # ------------------------------------------------------------------

    def _bandwidth(self, dim, n: int) -> float:
        span = max(dim.hi - dim.lo, 1e-12)
        return span / max(math.sqrt(n), 1.0)

    def _sample_parzen(self, dim, values: list, rng) -> float:
        """Draw from the good-set Parzen mixture (plus a uniform prior)."""
        total = len(values) + self.prior_weight
        if rng.uniform(0.0, total) < self.prior_weight or not values:
            return dim.sample(rng)
        center = values[int(rng.integers(len(values)))]
        sigma = self._bandwidth(dim, len(values))
        return dim.clip(rng.normal(center, sigma))

    def _parzen_density(self, dim, x: float, values: list) -> float:
        span = max(dim.hi - dim.lo, 1e-12)
        density = self.prior_weight / span
        if values:
            sigma = self._bandwidth(dim, len(values))
            z = (x - np.asarray(values, dtype=np.float64)) / sigma
            density += float(
                np.exp(-0.5 * z * z).sum() / (sigma * math.sqrt(2 * math.pi))
            )
        return density / (len(values) + self.prior_weight)

    def _parzen_log_ratio(self, dim, x: float, good: list, bad: list) -> float:
        l = self._parzen_density(dim, x, good)
        g = self._parzen_density(dim, x, bad)
        return math.log(max(l, 1e-300)) - math.log(max(g, 1e-300))

    # ------------------------------------------------------------------
    # Categorical dimensions
    # ------------------------------------------------------------------

    def _categorical_probs(self, dim: Choice, values: list) -> np.ndarray:
        counts = np.full(len(dim.options), self.prior_weight, dtype=np.float64)
        index = {opt: i for i, opt in enumerate(dim.options)}
        for v in values:
            counts[index[v]] += 1.0
        return counts / counts.sum()

    def _sample_categorical(self, dim: Choice, values: list, rng):
        probs = self._categorical_probs(dim, values)
        return dim.options[int(rng.choice(len(dim.options), p=probs))]

    def _categorical_log_ratio(self, dim: Choice, value, good: list, bad: list) -> float:
        index = dim.options.index(value)
        pl = self._categorical_probs(dim, good)[index]
        pg = self._categorical_probs(dim, bad)[index]
        return math.log(pl) - math.log(pg)
