"""Search-space definitions for SMBO / TPE.

A space is an ordered collection of named dimensions.  Dimensions know
how to sample themselves uniformly, how to clip values into range, and —
for the strategy-exploration protocol of paper Sec. III-C — how to shrink
their range around observed good values and report their midpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class Uniform:
    """A continuous parameter uniform on ``[lo, hi]``."""

    name: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"{self.name}: empty range [{self.lo}, {self.hi}]")

    def sample(self, rng) -> float:
        return float(rng.uniform(self.lo, self.hi))

    def clip(self, value: float) -> float:
        return float(np.clip(value, self.lo, self.hi))

    def midpoint(self) -> float:
        return (self.lo + self.hi) / 2.0

    def shrunk(self, values: np.ndarray, keep: float = 0.6) -> "Uniform":
        """Range shrunk toward the spread of good observed ``values``."""
        if len(values) == 0:
            return self
        lo = float(np.min(values))
        hi = float(np.max(values))
        margin = keep * (hi - lo) / 2.0 + 1e-12
        return replace(
            self,
            lo=max(self.lo, lo - margin),
            hi=min(self.hi, hi + margin),
        )


@dataclass(frozen=True)
class QUniform(Uniform):
    """A quantized uniform parameter (step ``q``), e.g. iteration counts."""

    q: float = 1.0

    def sample(self, rng) -> float:
        return self.clip(rng.uniform(self.lo, self.hi))

    def clip(self, value: float) -> float:
        snapped = np.round(value / self.q) * self.q
        return float(np.clip(snapped, self.lo, self.hi))

    def midpoint(self) -> float:
        return self.clip((self.lo + self.hi) / 2.0)


@dataclass(frozen=True)
class LogUniform(Uniform):
    """A positive parameter uniform in log space on ``[lo, hi]``."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.lo <= 0:
            raise ValueError(f"{self.name}: log-uniform needs lo > 0")

    def sample(self, rng) -> float:
        return float(np.exp(rng.uniform(np.log(self.lo), np.log(self.hi))))

    def midpoint(self) -> float:
        return float(np.exp((np.log(self.lo) + np.log(self.hi)) / 2.0))


@dataclass(frozen=True)
class Choice:
    """A categorical parameter over ``options`` (used for discrete
    strategy selection, e.g. which legalizer to run)."""

    name: str
    options: tuple

    def __post_init__(self) -> None:
        if not self.options:
            raise ValueError(f"{self.name}: empty choice")

    def sample(self, rng):
        return self.options[int(rng.integers(len(self.options)))]

    def clip(self, value):
        return value if value in self.options else self.options[0]

    def midpoint(self):
        return self.options[len(self.options) // 2]

    def shrunk(self, values, keep: float = 0.6) -> "Choice":
        return self


class Space:
    """An ordered set of dimensions addressed by name."""

    def __init__(self, dims: list) -> None:
        names = [d.name for d in dims]
        if len(set(names)) != len(names):
            raise ValueError("duplicate dimension names")
        self.dims = list(dims)

    def __iter__(self):
        return iter(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def names(self) -> list:
        return [d.name for d in self.dims]

    def dim(self, name: str):
        for d in self.dims:
            if d.name == name:
                return d
        raise KeyError(name)

    def sample(self, rng) -> dict:
        """One uniformly random configuration."""
        return {d.name: d.sample(rng) for d in self.dims}

    def midpoint(self) -> dict:
        """The range-midpoint configuration (the paper's final pick)."""
        return {d.name: d.midpoint() for d in self.dims}

    def subspace(self, names: list) -> "Space":
        """The sub-space holding only the named dimensions."""
        return Space([self.dim(n) for n in names])

    def replaced(self, new_dim) -> "Space":
        """A copy with the same-named dimension replaced."""
        return Space([new_dim if d.name == new_dim.name else d for d in self.dims])
