"""JSON-over-HTTP front end of the placement service (stdlib only).

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server` —
no framework, no threads — translating requests into
:class:`~repro.serve.service.PlacementService` calls:

====== ==================== ==========================================
Method Path                 Action
====== ==================== ==========================================
GET    ``/healthz``         liveness + queue/job counts
GET    ``/metrics``         service counters and obs instruments
POST   ``/jobs``            submit a placement job (``202 Accepted``)
GET    ``/jobs``            list jobs (``?state=`` filters)
GET    ``/jobs/<id>``       one job's status/result
DELETE ``/jobs/<id>``       cancel a job
POST   ``/sessions``        open an ECO session (``202 Accepted``)
GET    ``/sessions``        list sessions
GET    ``/sessions/<id>``   one session's status + delta history
DELETE ``/sessions/<id>``   close a session (GC its retained state)
POST   ``/sessions/<id>/deltas``        submit an incremental delta
GET    ``/sessions/<id>/deltas``        list the session's deltas
GET    ``/sessions/<id>/deltas/<did>``  one delta's status/result
====== ==================== ==========================================

Error mapping: validation problems are ``400``, unknown ids ``404``,
illegal lifecycle moves ``409``, a full queue ``429`` with a
``Retry-After`` header, drain ``503``.  Every response is JSON and every
connection is single-shot (``Connection: close``) — clients here are
submission scripts and pollers, not browsers holding keep-alives.
"""

from __future__ import annotations

import asyncio
import json
from http import HTTPStatus

from ..schema import SchemaError
from .jobs import (
    JobStateError,
    QueueFullError,
    ServiceClosedError,
    UnknownJobError,
)
from .sessions import (
    SessionStateError,
    UnknownDeltaError,
    UnknownSessionError,
)

#: Request-size guards (a placement request is a few KB of JSON).
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024


class _HttpError(Exception):
    """Internal: abort the request with ``status`` and a JSON error."""

    def __init__(self, status: HTTPStatus, message: str, headers=None) -> None:
        self.status = status
        self.message = message
        self.headers = headers or {}
        super().__init__(message)


class HttpServer:
    """Serves a :class:`PlacementService` over HTTP.

    Args:
        service: the (started) service to expose.
        host: bind address.
        port: bind port (``0`` picks a free one; see :attr:`port` after
            :meth:`start`).
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 8180) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple:
        """Bind and start accepting; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # One request per connection
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                status, payload, headers = self._dispatch(method, path, body)
            except _HttpError as err:
                status, payload, headers = err.status, {"error": err.message}, err.headers
            await self._respond(writer, status, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> tuple:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(HTTPStatus.REQUEST_HEADER_FIELDS_TOO_LARGE,
                             "headers too large") from None
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(HTTPStatus.REQUEST_HEADER_FIELDS_TOO_LARGE,
                             "headers too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise _HttpError(HTTPStatus.BAD_REQUEST, f"bad request line: {lines[0]!r}")
        method, path, _version = parts
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > MAX_BODY_BYTES:
            raise _HttpError(HTTPStatus.REQUEST_ENTITY_TOO_LARGE, "body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    def _dispatch(self, method: str, path: str, body: bytes) -> tuple:
        path, _sep, query = path.partition("?")
        if path == "/healthz" and method == "GET":
            return HTTPStatus.OK, self.service.healthz(), {}
        if path == "/metrics" and method == "GET":
            return HTTPStatus.OK, self.service.metrics(), {}
        if path == "/jobs":
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                state = _query_param(query, "state")
                jobs = [job.to_wire() for job in self.service.jobs(state)]
                return HTTPStatus.OK, {"jobs": jobs}, {}
            raise _HttpError(HTTPStatus.METHOD_NOT_ALLOWED, f"{method} /jobs")
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            return self._job_op(method, job_id)
        if path == "/sessions":
            if method == "POST":
                return self._create_session(body)
            if method == "GET":
                sessions = [s.to_wire() for s in self.service.sessions.sessions()]
                return HTTPStatus.OK, {"sessions": sessions}, {}
            raise _HttpError(HTTPStatus.METHOD_NOT_ALLOWED, f"{method} /sessions")
        if path.startswith("/sessions/"):
            return self._session_op(method, path[len("/sessions/"):], body)
        raise _HttpError(HTTPStatus.NOT_FOUND, f"no route for {path}")

    def _submit(self, body: bytes) -> tuple:
        try:
            request = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(HTTPStatus.BAD_REQUEST, f"bad JSON body: {exc}") from None
        try:
            job = self.service.submit(request)
        except QueueFullError as exc:
            raise _HttpError(
                HTTPStatus.TOO_MANY_REQUESTS, str(exc),
                headers={"Retry-After": f"{exc.retry_after:g}"},
            ) from None
        except ServiceClosedError as exc:
            raise _HttpError(HTTPStatus.SERVICE_UNAVAILABLE, str(exc)) from None
        except (SchemaError, ValueError, KeyError) as exc:
            # SchemaError/UnknownFlowError are ValueErrors; KeyError is
            # StrategyParams' unknown-parameter rejection.
            raise _HttpError(HTTPStatus.BAD_REQUEST, str(exc)) from None
        return HTTPStatus.ACCEPTED, job.to_wire(), {}

    def _job_op(self, method: str, job_id: str) -> tuple:
        try:
            if method == "GET":
                return HTTPStatus.OK, self.service.status(job_id).to_wire(), {}
            if method == "DELETE":
                return HTTPStatus.OK, self.service.cancel(job_id).to_wire(), {}
        except UnknownJobError as exc:
            raise _HttpError(HTTPStatus.NOT_FOUND, str(exc)) from None
        except JobStateError as exc:
            raise _HttpError(HTTPStatus.CONFLICT, str(exc)) from None
        raise _HttpError(HTTPStatus.METHOD_NOT_ALLOWED, f"{method} /jobs/<id>")

    # -- sessions ------------------------------------------------------

    @staticmethod
    def _parse_body(body: bytes) -> dict:
        try:
            return json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(HTTPStatus.BAD_REQUEST, f"bad JSON body: {exc}") from None

    def _create_session(self, body: bytes) -> tuple:
        request = self._parse_body(body)
        try:
            session = self.service.sessions.create(request)
        except ServiceClosedError as exc:
            raise _HttpError(HTTPStatus.SERVICE_UNAVAILABLE, str(exc)) from None
        except (SchemaError, ValueError, KeyError) as exc:
            raise _HttpError(HTTPStatus.BAD_REQUEST, str(exc)) from None
        return HTTPStatus.ACCEPTED, session.to_wire(), {}

    def _session_op(self, method: str, rest: str, body: bytes) -> tuple:
        parts = [p for p in rest.split("/") if p]
        manager = self.service.sessions
        try:
            if len(parts) == 1:
                if method == "GET":
                    return HTTPStatus.OK, manager.get(parts[0]).to_wire(), {}
                if method == "DELETE":
                    return HTTPStatus.OK, manager.close(parts[0]).to_wire(), {}
                raise _HttpError(HTTPStatus.METHOD_NOT_ALLOWED,
                                 f"{method} /sessions/<id>")
            if len(parts) == 2 and parts[1] == "deltas":
                if method == "POST":
                    return self._submit_delta(parts[0], body)
                if method == "GET":
                    session = manager.get(parts[0])
                    deltas = [d.to_wire() for d in session.deltas.values()]
                    return HTTPStatus.OK, {"deltas": deltas}, {}
                raise _HttpError(HTTPStatus.METHOD_NOT_ALLOWED,
                                 f"{method} /sessions/<id>/deltas")
            if len(parts) == 3 and parts[1] == "deltas" and method == "GET":
                return HTTPStatus.OK, manager.delta(parts[0], parts[2]).to_wire(), {}
        except (UnknownSessionError, UnknownDeltaError) as exc:
            raise _HttpError(HTTPStatus.NOT_FOUND, str(exc)) from None
        raise _HttpError(HTTPStatus.NOT_FOUND, f"no route for /sessions/{rest}")

    def _submit_delta(self, session_id: str, body: bytes) -> tuple:
        payload = self._parse_body(body)
        try:
            delta = self.service.sessions.submit_delta(session_id, payload)
        except QueueFullError as exc:
            raise _HttpError(
                HTTPStatus.TOO_MANY_REQUESTS, str(exc),
                headers={"Retry-After": f"{exc.retry_after:g}"},
            ) from None
        except ServiceClosedError as exc:
            raise _HttpError(HTTPStatus.SERVICE_UNAVAILABLE, str(exc)) from None
        except UnknownSessionError as exc:
            raise _HttpError(HTTPStatus.NOT_FOUND, str(exc)) from None
        except SessionStateError as exc:
            raise _HttpError(HTTPStatus.CONFLICT, str(exc)) from None
        except (SchemaError, ValueError, KeyError) as exc:
            raise _HttpError(HTTPStatus.BAD_REQUEST, str(exc)) from None
        return HTTPStatus.ACCEPTED, delta.to_wire(), {}

    async def _respond(self, writer: asyncio.StreamWriter, status: HTTPStatus,
                       payload: dict, headers: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = [
            f"HTTP/1.1 {status.value} {status.phrase}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()


def _query_param(query: str, name: str) -> str | None:
    for pair in query.split("&"):
        key, _sep, value = pair.partition("=")
        if key == name and value:
            return value
    return None
