"""JSON-over-HTTP front end of the placement service (stdlib only).

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server` —
no framework, no threads — translating requests into
:class:`~repro.serve.service.PlacementService` calls.  Every route
lives under the versioned ``/v1`` prefix and is declared once in
:data:`ROUTES`, the single route table:

====== ============================== ================================
Method Path                           Action
====== ============================== ================================
GET    ``/v1/healthz``                liveness + queue/job counts
GET    ``/v1/metrics``                service counters and obs instruments
POST   ``/v1/jobs``                   submit a placement job (``202``)
GET    ``/v1/jobs``                   list jobs (``?state=`` filters)
GET    ``/v1/jobs/<id>``              one job's status/result
DELETE ``/v1/jobs/<id>``              cancel a job
GET    ``/v1/jobs/<id>/events``       the job's event stream
                                      (``?after=<seq>&wait=<s>`` long-polls)
POST   ``/v1/sessions``               open an ECO session (``202``)
GET    ``/v1/sessions``               list sessions
GET    ``/v1/sessions/<id>``          one session's status + delta history
DELETE ``/v1/sessions/<id>``          close a session (GC retained state)
POST   ``/v1/sessions/<id>/deltas``   submit an incremental delta
GET    ``/v1/sessions/<id>/deltas``   list the session's deltas
GET    ``/v1/sessions/<id>/deltas/<did>`` one delta's status/result
POST   ``/v1/explorations``           start a strategy exploration (``202``)
GET    ``/v1/explorations``           list explorations (``?state=`` filters)
GET    ``/v1/explorations/<id>``      one exploration's status
DELETE ``/v1/explorations/<id>``      cancel an exploration (cooperative)
GET    ``/v1/explorations/<id>/events`` the exploration's trial/state stream
                                      (``?after=<seq>&wait=<s>`` long-polls)
GET    ``/v1/explorations/<id>/report`` the finished report (409 until done)
====== ============================== ================================

The pre-``/v1`` unversioned paths keep answering through a shim: the
path is re-matched with ``/v1`` prepended and the response carries
``Deprecation: true`` plus a ``Link: </v1/...>; rel="successor-version"``
header pointing at the replacement (pinned by
``tests/test_deprecations.py``).

Error mapping (one table for every route): validation problems are
``400``, unknown ids ``404``, illegal lifecycle moves ``409``, a full
queue ``429`` with a ``Retry-After`` header, drain ``503``.  Every
response is JSON and every connection is single-shot
(``Connection: close``) — clients here are submission scripts and
event followers, not browsers holding keep-alives; the events
long-poll holds the request open server-side instead of keeping the
socket across requests.
"""

from __future__ import annotations

import asyncio
import json
from http import HTTPStatus

from ..schema import SchemaError
from .exploration import ExplorationStateError, UnknownExplorationError
from .jobs import (
    JobStateError,
    QueueFullError,
    ServiceClosedError,
    UnknownJobError,
)
from .sessions import (
    SessionStateError,
    UnknownDeltaError,
    UnknownSessionError,
)

#: Request-size guards (a placement request is a few KB of JSON).
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

#: Longest server-side hold of an events long-poll, seconds.
MAX_EVENT_WAIT = 60.0

#: The route table: every (method, path pattern, handler) of the API.
#: ``{name}`` segments capture path parameters passed to the handler.
ROUTES = (
    ("GET", "/v1/healthz", "healthz"),
    ("GET", "/v1/metrics", "metrics"),
    ("POST", "/v1/jobs", "submit_job"),
    ("GET", "/v1/jobs", "list_jobs"),
    ("GET", "/v1/jobs/{job_id}", "job_status"),
    ("DELETE", "/v1/jobs/{job_id}", "cancel_job"),
    ("GET", "/v1/jobs/{job_id}/events", "job_events"),
    ("POST", "/v1/sessions", "create_session"),
    ("GET", "/v1/sessions", "list_sessions"),
    ("GET", "/v1/sessions/{session_id}", "session_status"),
    ("DELETE", "/v1/sessions/{session_id}", "close_session"),
    ("POST", "/v1/sessions/{session_id}/deltas", "submit_delta"),
    ("GET", "/v1/sessions/{session_id}/deltas", "list_deltas"),
    ("GET", "/v1/sessions/{session_id}/deltas/{delta_id}", "delta_status"),
    ("POST", "/v1/explorations", "create_exploration"),
    ("GET", "/v1/explorations", "list_explorations"),
    ("GET", "/v1/explorations/{exploration_id}", "exploration_status"),
    ("DELETE", "/v1/explorations/{exploration_id}", "cancel_exploration"),
    ("GET", "/v1/explorations/{exploration_id}/events", "exploration_events"),
    ("GET", "/v1/explorations/{exploration_id}/report", "exploration_report"),
)


class _HttpError(Exception):
    """Internal: abort the request with ``status`` and a JSON error."""

    def __init__(self, status: HTTPStatus, message: str, headers=None) -> None:
        self.status = status
        self.message = message
        self.headers = headers or {}
        super().__init__(message)


def _segments(path: str) -> list:
    return [part for part in path.split("/") if part]


def _match_route(method: str, path: str):
    """``(handler name, path params)`` for ``method path``, or raise.

    A path that matches a pattern under a different method is a 405; a
    path matching nothing returns ``(None, None)`` so the caller can
    try the deprecation shim before settling on 404.
    """
    parts = _segments(path)
    allowed = set()
    for route_method, pattern, handler in ROUTES:
        pattern_parts = _segments(pattern)
        if len(pattern_parts) != len(parts):
            continue
        params = {}
        for want, got in zip(pattern_parts, parts):
            if want.startswith("{") and want.endswith("}"):
                params[want[1:-1]] = got
            elif want != got:
                break
        else:
            if route_method == method:
                return handler, params
            allowed.add(route_method)
    if allowed:
        raise _HttpError(
            HTTPStatus.METHOD_NOT_ALLOWED,
            f"{method} {path} (allowed: {', '.join(sorted(allowed))})",
        )
    return None, None


class HttpServer:
    """Serves a :class:`PlacementService` over HTTP.

    Args:
        service: the (started) service to expose.
        host: bind address.
        port: bind port (``0`` picks a free one; see :attr:`port` after
            :meth:`start`).
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 8180) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple:
        """Bind and start accepting; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # One request per connection
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                status, payload, headers = await self._dispatch(method, path, body)
            except _HttpError as err:
                status, payload, headers = err.status, {"error": err.message}, err.headers
            await self._respond(writer, status, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> tuple:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(HTTPStatus.REQUEST_HEADER_FIELDS_TOO_LARGE,
                             "headers too large") from None
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(HTTPStatus.REQUEST_HEADER_FIELDS_TOO_LARGE,
                             "headers too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise _HttpError(HTTPStatus.BAD_REQUEST, f"bad request line: {lines[0]!r}")
        method, path, _version = parts
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > MAX_BODY_BYTES:
            raise _HttpError(HTTPStatus.REQUEST_ENTITY_TOO_LARGE, "body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes) -> tuple:
        path, _sep, query = path.partition("?")
        shim_headers = {}
        handler_name, params = _match_route(method, path)
        if handler_name is None and not path.startswith("/v1/"):
            handler_name, params = _match_route(method, "/v1" + path)
            if handler_name is not None:
                shim_headers = {
                    "Deprecation": "true",
                    "Link": f'</v1{path}>; rel="successor-version"',
                }
        if handler_name is None:
            raise _HttpError(HTTPStatus.NOT_FOUND, f"no route for {path}")
        handler = getattr(self, "_handle_" + handler_name)
        try:
            status, payload, headers = await handler(params, query, body)
        except _HttpError as err:
            err.headers = {**shim_headers, **err.headers}
            raise
        except QueueFullError as exc:
            raise _HttpError(
                HTTPStatus.TOO_MANY_REQUESTS, str(exc),
                headers={**shim_headers, "Retry-After": f"{exc.retry_after:g}"},
            ) from None
        except ServiceClosedError as exc:
            raise _HttpError(HTTPStatus.SERVICE_UNAVAILABLE, str(exc),
                             headers=dict(shim_headers)) from None
        except (UnknownJobError, UnknownSessionError, UnknownDeltaError,
                UnknownExplorationError) as exc:
            raise _HttpError(HTTPStatus.NOT_FOUND, str(exc),
                             headers=dict(shim_headers)) from None
        except (JobStateError, SessionStateError, ExplorationStateError) as exc:
            raise _HttpError(HTTPStatus.CONFLICT, str(exc),
                             headers=dict(shim_headers)) from None
        except (SchemaError, ValueError, KeyError) as exc:
            # SchemaError/UnknownFlowError are ValueErrors; KeyError is
            # StrategyParams' unknown-parameter rejection.
            raise _HttpError(HTTPStatus.BAD_REQUEST, str(exc),
                             headers=dict(shim_headers)) from None
        return status, payload, {**shim_headers, **headers}

    # ------------------------------------------------------------------
    # Handlers (one per ROUTES entry)
    # ------------------------------------------------------------------

    async def _handle_healthz(self, params, query, body) -> tuple:
        return HTTPStatus.OK, self.service.healthz(), {}

    async def _handle_metrics(self, params, query, body) -> tuple:
        return HTTPStatus.OK, self.service.metrics(), {}

    async def _handle_submit_job(self, params, query, body) -> tuple:
        job = self.service.submit(self._parse_body(body))
        return HTTPStatus.ACCEPTED, job.to_wire(), {}

    async def _handle_list_jobs(self, params, query, body) -> tuple:
        state = _query_param(query, "state")
        jobs = [job.to_wire() for job in self.service.jobs(state)]
        return HTTPStatus.OK, {"jobs": jobs}, {}

    async def _handle_job_status(self, params, query, body) -> tuple:
        return HTTPStatus.OK, self.service.status(params["job_id"]).to_wire(), {}

    async def _handle_cancel_job(self, params, query, body) -> tuple:
        return HTTPStatus.OK, self.service.cancel(params["job_id"]).to_wire(), {}

    async def _handle_job_events(self, params, query, body) -> tuple:
        job_id = params["job_id"]
        after = _numeric_param(query, "after", int, -1)
        wait = _numeric_param(query, "wait", float, 0.0)
        if wait > 0:
            events, done = await self.service.wait_events(
                job_id, after=after, timeout=min(wait, MAX_EVENT_WAIT)
            )
        else:
            events = self.service.events(job_id, after=after)
            done = self.service.status(job_id).terminal
        next_after = events[-1].seq if events else after
        payload = {
            "job_id": job_id,
            "events": [event.to_dict() for event in events],
            "next_after": next_after,
            "stream_done": done,
        }
        return HTTPStatus.OK, payload, {}

    async def _handle_create_session(self, params, query, body) -> tuple:
        session = self.service.sessions.create(self._parse_body(body))
        return HTTPStatus.ACCEPTED, session.to_wire(), {}

    async def _handle_list_sessions(self, params, query, body) -> tuple:
        sessions = [s.to_wire() for s in self.service.sessions.sessions()]
        return HTTPStatus.OK, {"sessions": sessions}, {}

    async def _handle_session_status(self, params, query, body) -> tuple:
        session = self.service.sessions.get(params["session_id"])
        return HTTPStatus.OK, session.to_wire(), {}

    async def _handle_close_session(self, params, query, body) -> tuple:
        session = self.service.sessions.close(params["session_id"])
        return HTTPStatus.OK, session.to_wire(), {}

    async def _handle_submit_delta(self, params, query, body) -> tuple:
        delta = self.service.sessions.submit_delta(
            params["session_id"], self._parse_body(body)
        )
        return HTTPStatus.ACCEPTED, delta.to_wire(), {}

    async def _handle_list_deltas(self, params, query, body) -> tuple:
        session = self.service.sessions.get(params["session_id"])
        deltas = [d.to_wire() for d in session.deltas.values()]
        return HTTPStatus.OK, {"deltas": deltas}, {}

    async def _handle_delta_status(self, params, query, body) -> tuple:
        delta = self.service.sessions.delta(
            params["session_id"], params["delta_id"]
        )
        return HTTPStatus.OK, delta.to_wire(), {}

    async def _handle_create_exploration(self, params, query, body) -> tuple:
        exploration = self.service.explorations.create(self._parse_body(body))
        return HTTPStatus.ACCEPTED, exploration.to_wire(), {}

    async def _handle_list_explorations(self, params, query, body) -> tuple:
        state = _query_param(query, "state")
        explorations = [
            e.to_wire() for e in self.service.explorations.explorations(state)
        ]
        return HTTPStatus.OK, {"explorations": explorations}, {}

    async def _handle_exploration_status(self, params, query, body) -> tuple:
        exploration = self.service.explorations.get(params["exploration_id"])
        return HTTPStatus.OK, exploration.to_wire(), {}

    async def _handle_cancel_exploration(self, params, query, body) -> tuple:
        exploration = self.service.explorations.cancel(params["exploration_id"])
        return HTTPStatus.OK, exploration.to_wire(), {}

    async def _handle_exploration_events(self, params, query, body) -> tuple:
        exploration_id = params["exploration_id"]
        after = _numeric_param(query, "after", int, -1)
        wait = _numeric_param(query, "wait", float, 0.0)
        if wait > 0:
            events, done = await self.service.explorations.wait_events(
                exploration_id, after=after, timeout=min(wait, MAX_EVENT_WAIT)
            )
        else:
            events = self.service.explorations.events(exploration_id, after=after)
            done = self.service.explorations.get(exploration_id).terminal
        next_after = events[-1].seq if events else after
        payload = {
            "exploration_id": exploration_id,
            "events": [event.to_dict() for event in events],
            "next_after": next_after,
            "stream_done": done,
        }
        return HTTPStatus.OK, payload, {}

    async def _handle_exploration_report(self, params, query, body) -> tuple:
        report = self.service.explorations.report(params["exploration_id"])
        return HTTPStatus.OK, report, {}

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_body(body: bytes) -> dict:
        try:
            return json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(HTTPStatus.BAD_REQUEST, f"bad JSON body: {exc}") from None

    async def _respond(self, writer: asyncio.StreamWriter, status: HTTPStatus,
                       payload: dict, headers: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = [
            f"HTTP/1.1 {status.value} {status.phrase}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()


def _query_param(query: str, name: str) -> str | None:
    for pair in query.split("&"):
        key, _sep, value = pair.partition("=")
        if key == name and value:
            return value
    return None


def _numeric_param(query: str, name: str, cast, default):
    raw = _query_param(query, name)
    if raw is None:
        return default
    try:
        return cast(raw)
    except ValueError:
        raise _HttpError(
            HTTPStatus.BAD_REQUEST, f"query parameter {name!r} must be {cast.__name__}"
        ) from None
