"""Placement-as-a-service: the async job server over the run facade.

After PRs 1–4 every placement still required importing the package
in-process; this package is the step from library to system.  A
:class:`PlacementService` accepts serialized, versioned
:class:`repro.api.RunConfig` payloads (see :mod:`repro.schema`), runs
them through a bounded queue and worker pool on the
:mod:`repro.runtime` executor, memoizes results in the artifact cache,
and exposes the whole thing over JSON-HTTP (:class:`HttpServer`) or
in-process (:class:`ServiceClient`):

    service = PlacementService(ServiceConfig(workers=2, capacity=8))
    await service.start()
    client = ServiceClient(service)
    summary = await client.run("OR1200", config=RunConfig(scale=0.002))

From the shell: ``repro serve`` boots the HTTP server, ``repro submit``
posts a job and optionally waits, ``repro jobs`` inspects or cancels.
Backpressure is explicit — a full queue rejects with a retry-after hint
(HTTP 429) rather than buffering without bound — and shutdown drains:
accepted jobs finish, new submissions are refused.

The service also hosts **stateful ECO sessions** (:mod:`repro.eco`):
``POST /sessions`` converges a design once, ``POST
/sessions/<id>/deltas`` applies incremental edits against the retained
state, and draining closes (GCs) every open session.
"""

from .client import (
    HttpServiceClient,
    JobFailedError,
    ServiceClient,
    make_request,
    make_session_request,
)
from .http import HttpServer
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL,
    Job,
    JobStateError,
    JobStore,
    QueueFullError,
    ServeError,
    ServiceClosedError,
    UnknownJobError,
)
from .service import PlacementService, ServiceConfig, execute_request
from .sessions import (
    SESSION_STATES,
    DeltaJob,
    Session,
    SessionManager,
    SessionStateError,
    UnknownDeltaError,
    UnknownSessionError,
)

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "HttpServer",
    "HttpServiceClient",
    "Job",
    "JobFailedError",
    "JobStateError",
    "JobStore",
    "DeltaJob",
    "PlacementService",
    "QUEUED",
    "QueueFullError",
    "RUNNING",
    "SESSION_STATES",
    "STATES",
    "ServeError",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceConfig",
    "Session",
    "SessionManager",
    "SessionStateError",
    "TERMINAL",
    "UnknownDeltaError",
    "UnknownJobError",
    "UnknownSessionError",
    "execute_request",
    "make_request",
    "make_session_request",
]
