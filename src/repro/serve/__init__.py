"""Placement-as-a-service: the async job server over the run facade.

After PRs 1–4 every placement still required importing the package
in-process; this package is the step from library to system.  A
:class:`PlacementService` accepts serialized, versioned
:class:`repro.api.RunConfig` payloads (see :mod:`repro.schema`), runs
them through a bounded fair queue onto **process shards** (persistent
single-worker :class:`repro.runtime.TaskExecutor` pools — a crashed or
timed-out worker fails only its job, the shard recycles and the service
stays up), dedupes identical in-flight configs, memoizes results in the
artifact cache, and exposes the whole thing over versioned JSON-HTTP
(:class:`HttpServer`, all routes under ``/v1``) or in-process
(:class:`ServiceClient`):

    service = PlacementService(ServiceConfig(shards=2, capacity=8))
    await service.start()
    client = ServiceClient(service)
    summary = await client.run("OR1200", config=RunConfig(scale=0.002))

Both clients implement the :class:`BaseClient` protocol — including the
live event stream: every job publishes :class:`repro.schema.JobEvent`
records (lifecycle states plus gp-iteration / padding-round / RRR-round
progress out of the worker process) consumed via ``follow(job_id)`` or
``GET /v1/jobs/<id>/events`` long-polls.

From the shell: ``repro serve --shards N`` boots the HTTP server,
``repro submit --follow`` posts a job and streams its progress,
``repro jobs`` inspects or cancels.  Backpressure is explicit — a full
queue sheds strictly-lower-priority queued work for a higher-priority
submission, otherwise rejects with a retry-after hint (HTTP 429) —
scheduling is weighted round-robin across ``client_id`` buckets, and
shutdown drains: accepted jobs finish, new submissions are refused.
The pre-``/v1`` unversioned routes still answer through deprecation
shims (``Deprecation: true`` + a successor-version ``Link``).

The service also hosts **stateful ECO sessions** (:mod:`repro.eco`):
``POST /v1/sessions`` converges a design once, ``POST
/v1/sessions/<id>/deltas`` applies incremental edits against the
retained state, and draining closes (GCs) every open session.

**Strategy exploration is a first-class service workload**
(:mod:`repro.serve.exploration`): ``POST /v1/explorations`` starts a
TPE exploration whose trials run as ordinary jobs across the shards
(inheriting memoization, coalescing, fairness, and crash quarantine),
``GET /v1/explorations/<id>/events`` long-polls per-trial events, and
``GET /v1/explorations/<id>/report`` serves the final
:class:`repro.schema.ExplorationReport`.  Completed trials persist as
:class:`repro.tpe.TransferPriors` in the service cache and warm-start
later explorations on similar designs.
"""

from ..schema import JobEvent, JobProgress
from .client import (
    BaseClient,
    HttpServiceClient,
    JobFailedError,
    ServiceClient,
    make_exploration_request,
    make_request,
    make_session_request,
)
from .events import EventLog, ProgressWriter, read_new_progress
from .exploration import (
    EXPLORATION_STATES,
    DistributedEvaluator,
    Exploration,
    ExplorationCancelledError,
    ExplorationManager,
    ExplorationStateError,
    LocalServiceHost,
    UnknownExplorationError,
)
from .http import HttpServer
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL,
    Job,
    JobStateError,
    JobStore,
    QueueFullError,
    ServeError,
    ServiceClosedError,
    UnknownJobError,
)
from .queueing import FairQueue
from .service import PlacementService, ServiceConfig, execute_request
from .sessions import (
    SESSION_STATES,
    DeltaJob,
    Session,
    SessionManager,
    SessionStateError,
    UnknownDeltaError,
    UnknownSessionError,
)
from .shards import ProcessShard

__all__ = [
    "BaseClient",
    "CANCELLED",
    "DONE",
    "DistributedEvaluator",
    "EXPLORATION_STATES",
    "EventLog",
    "Exploration",
    "ExplorationCancelledError",
    "ExplorationManager",
    "ExplorationStateError",
    "FAILED",
    "FairQueue",
    "HttpServer",
    "HttpServiceClient",
    "Job",
    "JobEvent",
    "JobFailedError",
    "JobProgress",
    "JobStateError",
    "JobStore",
    "DeltaJob",
    "LocalServiceHost",
    "PlacementService",
    "ProcessShard",
    "ProgressWriter",
    "QUEUED",
    "QueueFullError",
    "RUNNING",
    "SESSION_STATES",
    "STATES",
    "ServeError",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceConfig",
    "Session",
    "SessionManager",
    "SessionStateError",
    "TERMINAL",
    "UnknownDeltaError",
    "UnknownExplorationError",
    "UnknownJobError",
    "UnknownSessionError",
    "execute_request",
    "make_exploration_request",
    "make_request",
    "make_session_request",
    "read_new_progress",
]
