"""Job event streams: progress capture in shard workers, fan-out to clients.

The streaming pipeline has three small parts:

* :class:`ProgressWriter` — a :class:`repro.obs.Tracer` sink installed
  *inside the worker process* (see :func:`repro.serve.shards.run_sharded`).
  It filters the span stream down to the three progress loops the flow
  already narrates (``gp/iteration``, ``puffer/padding_round``,
  ``route/rrr_round``), converts each closed span into a
  :class:`repro.schema.JobProgress`, and appends it as one JSONL line to
  a per-job progress file, flushed per line.  A file is the channel on
  purpose: it survives the worker being killed mid-placement (the
  parent just stops seeing new lines) and needs no picklable plumbing
  through the process pool.
* :func:`read_new_progress` — the parent-side incremental reader: parse
  every *complete* line past a byte offset (a torn final line is left
  for the next poll) and return the samples plus the new offset.
* :class:`EventLog` — the loop-confined per-job event journal.  Every
  lifecycle transition and progress sample becomes a monotonically
  sequenced :class:`repro.schema.JobEvent`; long-poll readers park a
  future and are woken by the next publish.
"""

from __future__ import annotations

import asyncio
import json
import time

from ..schema import PROGRESS_STAGES, JobEvent, JobProgress

#: Span attribute holding the loop counter, per stage.
_STEP_ATTR = {"gp": "i", "padding": "round", "route": "round"}


def progress_from_record(record: dict):
    """Map one tracer record to a :class:`JobProgress`, or ``None``.

    Only closed-span records whose name is a known progress stage
    qualify; the stage's loop-counter attribute becomes ``step`` and
    every other scalar attribute is carried in ``metrics``.
    """
    if record.get("type") != "span":
        return None
    stage = PROGRESS_STAGES.get(record.get("name"))
    if stage is None:
        return None
    attrs = dict(record.get("attrs") or {})
    step = attrs.pop(_STEP_ATTR[stage], None)
    if not isinstance(step, int) or isinstance(step, bool) or step < 0:
        return None
    metrics = {
        key: value
        for key, value in attrs.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    return JobProgress(stage=stage, step=step, metrics=metrics)


class ProgressWriter:
    """Tracer sink writing progress samples as JSONL to ``path``."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._file = open(self.path, "a")

    def __call__(self, record: dict) -> None:
        progress = progress_from_record(record)
        if progress is None:
            return
        json.dump(progress.to_dict(), self._file, separators=(",", ":"))
        self._file.write("\n")
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


def read_new_progress(path: str, offset: int = 0) -> tuple:
    """Parse complete progress lines past ``offset``.

    Returns ``(samples, new_offset)``.  A missing file (worker not
    started yet, or already cleaned up) and a torn final line are both
    "nothing new yet"; a garbled complete line is skipped rather than
    poisoning the stream.
    """
    try:
        with open(path, "rb") as f:
            f.seek(offset)
            data = f.read()
    except OSError:
        return [], offset
    end = data.rfind(b"\n")
    if end < 0:
        return [], offset
    samples = []
    for line in data[: end + 1].splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            samples.append(JobProgress.from_dict(json.loads(line)))
        except ValueError:  # includes SchemaError and JSONDecodeError
            continue
    return samples, offset + end + 1


class EventLog:
    """Per-job ordered event journal with long-poll wakeups.

    Loop-confined like the service: ``publish`` and ``wait`` must both
    run on the event-loop thread, which makes the waiter bookkeeping
    race-free without locks.
    """

    def __init__(self) -> None:
        self._events: dict = {}   # job_id -> [JobEvent, ...]
        self._waiters: dict = {}  # job_id -> [Future, ...]

    def register(self, job_id: str) -> None:
        """Open an (empty) stream for a freshly created job."""
        self._events.setdefault(job_id, [])

    def publish(self, job_id: str, kind: str, state: str | None = None,
                progress: JobProgress | None = None, trial=None) -> JobEvent:
        """Append one event (seq auto-assigned) and wake every waiter."""
        events = self._events.setdefault(job_id, [])
        event = JobEvent(
            seq=len(events), kind=kind, job_id=job_id, ts=time.time(),
            state=state, progress=progress, trial=trial,
        )
        events.append(event)
        for waiter in self._waiters.pop(job_id, []):
            if not waiter.done():
                waiter.set_result(None)
        return event

    def events(self, job_id: str, after: int = -1) -> list:
        """Every event of ``job_id`` with ``seq > after``, in order."""
        return [e for e in self._events.get(job_id, []) if e.seq > after]

    async def wait(self, job_id: str, after: int = -1,
                   timeout: float | None = None) -> list:
        """Long-poll: events past ``after``, waiting up to ``timeout``
        for the first one.  A timeout returns the (possibly empty)
        current slice rather than raising.
        """
        fresh = self.events(job_id, after)
        if fresh:
            return fresh
        waiter = asyncio.get_running_loop().create_future()
        self._waiters.setdefault(job_id, []).append(waiter)
        try:
            await asyncio.wait_for(waiter, timeout)
        except asyncio.TimeoutError:
            pass
        finally:
            pending = self._waiters.get(job_id)
            if pending and waiter in pending:
                pending.remove(waiter)
        return self.events(job_id, after)
