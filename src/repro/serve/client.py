"""Clients of the placement service.

Both clients implement one protocol, :class:`BaseClient` — same method
names, same typed errors, same request surface — so tests, the CLI, and
the exploration loop are written once against the protocol and work
in-process or over the wire:

* :class:`ServiceClient` — in-process, async: wraps a running
  :class:`~repro.serve.service.PlacementService` directly (no sockets).
  This is what tests and the strategy-exploration loop use — the
  service becomes a callable evaluation backend.
* :class:`HttpServiceClient` — synchronous, over :mod:`http.client`
  against the ``/v1`` HTTP API: what ``repro submit`` / ``repro jobs``
  use to talk to a ``repro serve`` process.  Raises the same typed
  errors as the service (:class:`QueueFullError` on 429 with the
  server's retry-after, …) so callers handle backpressure identically
  in and out of process.

Beyond submit/poll, both speak the event stream: ``events`` reads a
job's ordered :class:`repro.schema.JobEvent` slice, ``follow`` iterates
events live until the job's terminal state event (the HTTP client
long-polls ``GET /v1/jobs/<id>/events``), and ``run(progress=...)``
invokes a callback per event while waiting.
"""

from __future__ import annotations

import abc
import http.client
import json
import time

from ..schema import JobEvent
from .jobs import (
    DONE,
    TERMINAL,
    JobStateError,
    QueueFullError,
    ServeError,
    ServiceClosedError,
    UnknownJobError,
)


class JobFailedError(ServeError):
    """A waited-on job reached ``failed`` or ``cancelled``.

    Attributes:
        job: the terminal job (a :class:`~repro.serve.jobs.Job` for the
            in-process client, a wire dict for the HTTP client).
    """

    def __init__(self, job) -> None:
        self.job = job
        state = job.state if hasattr(job, "state") else job["state"]
        error = job.error if hasattr(job, "error") else job.get("error")
        job_id = job.id if hasattr(job, "id") else job["id"]
        super().__init__(f"job {job_id} {state}: {error or 'no result'}")


def make_request(design: str, *, flow: str = "puffer", config=None,
                 route: bool = False, timeout: float | None = None,
                 priority: int = 0, client_id: str | None = None) -> dict:
    """Build the JSON-safe wire request both clients POST.

    ``config`` may be a :class:`repro.api.RunConfig` (serialized via
    ``to_dict``), an already-serialized wire dict, or ``None``.
    ``priority`` and ``client_id`` are scheduling hints (fair-queue
    bucket and shed order) and never affect the memoization key.
    """
    if config is not None and hasattr(config, "to_dict"):
        config = config.to_dict()
    request: dict = {"design": design, "flow": flow}
    if config is not None:
        request["config"] = config
    if route:
        request["route"] = True
    if timeout is not None:
        request["timeout"] = timeout
    if priority:
        request["priority"] = int(priority)
    if client_id is not None:
        request["client_id"] = client_id
    return request


def make_session_request(design: str, *, config=None, eco=None,
                         verify: str | None = None) -> dict:
    """Build the JSON-safe wire request both clients POST to
    ``/v1/sessions``.  ``config``/``eco`` may be dataclasses
    (serialized via ``to_dict``) or already-serialized wire dicts."""
    if config is not None and hasattr(config, "to_dict"):
        config = config.to_dict()
    if eco is not None and hasattr(eco, "to_dict"):
        eco = eco.to_dict()
    request: dict = {"design": design}
    if config is not None:
        request["config"] = config
    if eco is not None:
        request["eco"] = eco
    if verify is not None:
        request["verify"] = verify
    return request


def make_exploration_request(config=None, *, priority: int = 0,
                             client_id: str | None = None) -> dict:
    """Build the JSON-safe wire request both clients POST to
    ``/v1/explorations``.  ``config`` may be a
    :class:`repro.api.ExploreConfig` (serialized via ``to_dict``), an
    already-serialized wire dict, or ``None`` (server defaults);
    ``priority``/``client_id`` schedule the exploration's trial jobs.
    """
    if config is not None and hasattr(config, "to_dict"):
        config = config.to_dict()
    request: dict = {}
    if config is not None:
        request["config"] = config
    if priority:
        request["priority"] = int(priority)
    if client_id is not None:
        request["client_id"] = client_id
    return request


def _is_stream_end(event: JobEvent) -> bool:
    return event.kind == "state" and event.state in TERMINAL


class BaseClient(abc.ABC):
    """The client protocol both transports implement.

    Method semantics (argument names included) are part of the
    contract; in-process implementations may be ``async`` where the
    HTTP client blocks, but names, payload shapes
    (:class:`~repro.serve.jobs.Job` wire dicts,
    :class:`repro.schema.JobEvent`), and raised error types match.
    """

    @abc.abstractmethod
    def submit(self, design: str, *, flow: str = "puffer", config=None,
               route: bool = False, timeout: float | None = None,
               priority: int = 0, client_id: str | None = None):
        """Submit one placement; returns the created job."""

    @abc.abstractmethod
    def status(self, job_id: str):
        """The job's current status."""

    @abc.abstractmethod
    def cancel(self, job_id: str):
        """Cancel a queued or running job."""

    @abc.abstractmethod
    def wait(self, job_id: str, timeout: float | None = None):
        """Block/await until the job is terminal; returns it."""

    @abc.abstractmethod
    def run(self, design: str, *, wait_timeout: float | None = None,
            progress=None, **kwargs):
        """Submit + wait + return the result summary (or raise
        :class:`JobFailedError`); ``progress`` is called with every
        :class:`~repro.schema.JobEvent` observed while waiting."""

    @abc.abstractmethod
    def events(self, job_id: str, after: int = -1):
        """The job's ordered events with ``seq > after``."""

    @abc.abstractmethod
    def follow(self, job_id: str, *, after: int = -1,
               timeout: float | None = None):
        """Iterate events live, ending after the terminal state event."""

    @abc.abstractmethod
    def healthz(self) -> dict:
        """Liveness payload."""

    @abc.abstractmethod
    def metrics(self) -> dict:
        """Counters + instruments payload."""


class ServiceClient(BaseClient):
    """In-process async client over a started :class:`PlacementService`."""

    def __init__(self, service) -> None:
        self.service = service

    async def submit(self, design: str, **kwargs):
        """Submit and return the :class:`~repro.serve.jobs.Job`."""
        return self.service.submit(make_request(design, **kwargs))

    async def wait(self, job_id: str, timeout: float | None = None):
        """Await the job's terminal state and return it."""
        return await self.service.wait(job_id, timeout=timeout)

    async def run(self, design: str, *, wait_timeout: float | None = None,
                  progress=None, **kwargs) -> dict:
        """Submit, await completion, and return the result summary.

        Args:
            progress: optional callable invoked with every
                :class:`repro.schema.JobEvent` as it arrives.

        Raises:
            JobFailedError: the job failed or was cancelled.
        """
        job = await self.submit(design, **kwargs)
        if progress is not None:
            async for event in self.follow(job.id, timeout=wait_timeout):
                progress(event)
            job = self.status(job.id)
        else:
            job = await self.wait(job.id, timeout=wait_timeout)
        if job.state != DONE:
            raise JobFailedError(job)
        return job.result

    def status(self, job_id: str):
        return self.service.status(job_id)

    def cancel(self, job_id: str):
        return self.service.cancel(job_id)

    def events(self, job_id: str, after: int = -1) -> list:
        return self.service.events(job_id, after=after)

    async def follow(self, job_id: str, *, after: int = -1,
                     timeout: float | None = None):
        """Async-iterate the job's events until its terminal event."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            poll = 10.0
            if deadline is not None:
                poll = min(poll, deadline - time.monotonic())
                if poll <= 0:
                    raise TimeoutError(f"job {job_id} event stream still open")
            batch, _done = await self.service.wait_events(
                job_id, after=after, timeout=poll
            )
            for event in batch:
                yield event
                if _is_stream_end(event):
                    return
            if batch:
                after = batch[-1].seq

    def healthz(self) -> dict:
        return self.service.healthz()

    def metrics(self) -> dict:
        return self.service.metrics()

    # -- ECO sessions --------------------------------------------------

    def create_session(self, design: str, *, config=None, eco=None,
                       verify: str | None = None):
        """Open an incremental session; returns the live ``Session``."""
        return self.service.sessions.create(
            make_session_request(design, config=config, eco=eco, verify=verify)
        )

    async def wait_session(self, session_id: str, timeout: float | None = None):
        """Await the cold start (ready or failed) and return the session."""
        return await self.service.sessions.wait_ready(session_id, timeout=timeout)

    def submit_delta(self, session_id: str, delta):
        """Queue one delta (typed or wire dict) against a session."""
        if hasattr(delta, "to_dict"):
            delta = delta.to_dict()
        return self.service.sessions.submit_delta(session_id, delta)

    async def apply_delta(self, session_id: str, delta,
                          timeout: float | None = None) -> dict:
        """Submit a delta, await it, and return its result summary.

        Raises:
            JobFailedError: the delta failed.
        """
        record = self.submit_delta(session_id, delta)
        record = await self.service.sessions.wait_delta(
            session_id, record.id, timeout=timeout
        )
        if record.state != DONE:
            raise JobFailedError(record)
        return record.result

    def close_session(self, session_id: str):
        return self.service.sessions.close(session_id)

    # -- strategy explorations -----------------------------------------

    def create_exploration(self, config=None, *, priority: int = 0,
                           client_id: str | None = None):
        """Start an exploration; returns the live ``Exploration``."""
        return self.service.explorations.create(
            make_exploration_request(
                config, priority=priority, client_id=client_id
            )
        )

    def exploration(self, exploration_id: str):
        return self.service.explorations.get(exploration_id)

    def explorations(self, state: str | None = None) -> list:
        return self.service.explorations.explorations(state)

    def cancel_exploration(self, exploration_id: str):
        return self.service.explorations.cancel(exploration_id)

    async def wait_exploration(self, exploration_id: str,
                               timeout: float | None = None):
        """Await the exploration's terminal state and return it."""
        return await self.service.explorations.wait(
            exploration_id, timeout=timeout
        )

    def exploration_events(self, exploration_id: str, after: int = -1) -> list:
        return self.service.explorations.events(exploration_id, after=after)

    async def follow_exploration(self, exploration_id: str, *,
                                 after: int = -1,
                                 timeout: float | None = None):
        """Async-iterate trial/state events until the terminal event."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            poll = 10.0
            if deadline is not None:
                poll = min(poll, deadline - time.monotonic())
                if poll <= 0:
                    raise TimeoutError(
                        f"exploration {exploration_id} event stream still open"
                    )
            batch, _done = await self.service.explorations.wait_events(
                exploration_id, after=after, timeout=poll
            )
            for event in batch:
                yield event
                if _is_stream_end(event):
                    return
            if batch:
                after = batch[-1].seq

    def exploration_report(self, exploration_id: str) -> dict:
        """The finished exploration's wire report (raises
        :class:`~repro.serve.exploration.ExplorationStateError` until
        ``done``)."""
        return self.service.explorations.report(exploration_id)


class HttpServiceClient(BaseClient):
    """Synchronous JSON client for a ``repro serve`` endpoint (``/v1``).

    Args:
        host, port: the server address.
        timeout: socket timeout per request, seconds.  Long-poll
            requests extend it by the requested server-side wait.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8180,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None,
                 timeout: float | None = None) -> dict:
        body = None if payload is None else json.dumps(payload)
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            conn.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = conn.getresponse()
            data = json.loads(response.read().decode("utf-8") or "{}")
            status = response.status
            retry_after = response.getheader("Retry-After")
        finally:
            conn.close()
        if status < 400:
            return data
        self._raise(status, data.get("error", f"HTTP {status}"), retry_after)

    def _raise(self, status: int, message: str, retry_after) -> None:
        if status == 429:
            # Capacity isn't on the wire; keep the server's message.
            raise QueueFullError(capacity=-1,
                                 retry_after=float(retry_after or 1.0),
                                 message=message)
        if status == 404:
            raise UnknownJobError("<remote>", message=message)
        if status == 409:
            raise JobStateError(message)
        if status == 503:
            raise ServiceClosedError(message)
        if status == 400:
            raise ValueError(message)
        raise ServeError(f"HTTP {status}: {message}")

    # -- operations ----------------------------------------------------

    def submit(self, design: str, **kwargs) -> dict:
        """POST the job; returns its wire dict (``state`` = ``queued``
        or already ``done`` on a cache hit)."""
        return self._request("POST", "/v1/jobs", make_request(design, **kwargs))

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self, state: str | None = None) -> list:
        path = "/v1/jobs" if state is None else f"/v1/jobs?state={state}"
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def events(self, job_id: str, after: int = -1,
               wait: float | None = None) -> list:
        """GET the job's events past ``after`` as typed
        :class:`~repro.schema.JobEvent`; ``wait`` long-polls up to that
        many seconds for the first new event."""
        path = f"/v1/jobs/{job_id}/events?after={after}"
        timeout = None
        if wait:
            path += f"&wait={wait:g}"
            timeout = self.timeout + wait
        payload = self._request("GET", path, timeout=timeout)
        return [JobEvent.from_dict(event) for event in payload["events"]]

    def follow(self, job_id: str, *, after: int = -1,
               timeout: float | None = None, wait: float = 10.0):
        """Yield the job's events live (long-polling) until its
        terminal state event; raises ``TimeoutError`` past ``timeout``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            poll = wait
            if deadline is not None:
                poll = min(poll, deadline - time.monotonic())
                if poll <= 0:
                    raise TimeoutError(f"job {job_id} event stream still open")
            batch = self.events(job_id, after=after, wait=max(poll, 0.05))
            for event in batch:
                yield event
                if _is_stream_end(event):
                    return
            if batch:
                after = batch[-1].seq

    def wait(self, job_id: str, timeout: float | None = None,
             poll: float = 0.25) -> dict:
        """Poll until the job is terminal; returns its wire dict."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {job['state']}")
            time.sleep(poll)

    def run(self, design: str, *, wait_timeout: float | None = None,
            poll: float = 0.25, progress=None, **kwargs) -> dict:
        """Submit, wait to completion, and return the result summary.

        With ``progress`` the wait rides the event stream (one callback
        per :class:`~repro.schema.JobEvent`) instead of status polling.
        """
        job = self.submit(design, **kwargs)
        if job["state"] != DONE:
            if progress is not None:
                for event in self.follow(job["id"], timeout=wait_timeout):
                    progress(event)
                job = self.status(job["id"])
            else:
                job = self.wait(job["id"], timeout=wait_timeout, poll=poll)
        if job["state"] != DONE:
            raise JobFailedError(job)
        return job["result"]

    # -- ECO sessions --------------------------------------------------

    def create_session(self, design: str, *, config=None, eco=None,
                       verify: str | None = None) -> dict:
        """POST the session; returns its wire dict (``initializing``)."""
        return self._request(
            "POST", "/v1/sessions",
            make_session_request(design, config=config, eco=eco, verify=verify),
        )

    def session(self, session_id: str) -> dict:
        return self._request("GET", f"/v1/sessions/{session_id}")

    def sessions(self) -> list:
        return self._request("GET", "/v1/sessions")["sessions"]

    def close_session(self, session_id: str) -> dict:
        return self._request("DELETE", f"/v1/sessions/{session_id}")

    def wait_session(self, session_id: str, timeout: float | None = None,
                     poll: float = 0.25) -> dict:
        """Poll until the cold start finishes; returns the wire dict."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            session = self.session(session_id)
            if session["state"] != "initializing":
                return session
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"session {session_id} still initializing")
            time.sleep(poll)

    def submit_delta(self, session_id: str, delta) -> dict:
        """POST one delta (typed or wire dict); returns its wire dict."""
        if hasattr(delta, "to_dict"):
            delta = delta.to_dict()
        return self._request("POST", f"/v1/sessions/{session_id}/deltas", delta)

    def delta(self, session_id: str, delta_id: str) -> dict:
        return self._request("GET", f"/v1/sessions/{session_id}/deltas/{delta_id}")

    def apply_delta(self, session_id: str, delta,
                    wait_timeout: float | None = None,
                    poll: float = 0.25) -> dict:
        """Submit a delta, poll to completion, return its result summary."""
        record = self.submit_delta(session_id, delta)
        deadline = None if wait_timeout is None else time.monotonic() + wait_timeout
        while record["state"] in ("queued", "running"):
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"delta {record['id']} still {record['state']}")
            time.sleep(poll)
            record = self.delta(session_id, record["id"])
        if record["state"] != DONE:
            raise JobFailedError(record)
        return record["result"]

    # -- strategy explorations -----------------------------------------

    def create_exploration(self, config=None, *, priority: int = 0,
                           client_id: str | None = None) -> dict:
        """POST the exploration; returns its wire dict (``running``)."""
        return self._request(
            "POST", "/v1/explorations",
            make_exploration_request(
                config, priority=priority, client_id=client_id
            ),
        )

    def exploration(self, exploration_id: str) -> dict:
        return self._request("GET", f"/v1/explorations/{exploration_id}")

    def explorations(self, state: str | None = None) -> list:
        path = (
            "/v1/explorations" if state is None
            else f"/v1/explorations?state={state}"
        )
        return self._request("GET", path)["explorations"]

    def cancel_exploration(self, exploration_id: str) -> dict:
        return self._request("DELETE", f"/v1/explorations/{exploration_id}")

    def wait_exploration(self, exploration_id: str,
                         timeout: float | None = None,
                         poll: float = 0.25) -> dict:
        """Poll until the exploration is terminal; returns its wire dict."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            exploration = self.exploration(exploration_id)
            if exploration["state"] in ("done", "failed", "cancelled"):
                return exploration
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"exploration {exploration_id} still {exploration['state']}"
                )
            time.sleep(poll)

    def exploration_events(self, exploration_id: str, after: int = -1,
                           wait: float | None = None) -> list:
        """GET the exploration's events past ``after`` as typed
        :class:`~repro.schema.JobEvent`; ``wait`` long-polls."""
        path = f"/v1/explorations/{exploration_id}/events?after={after}"
        timeout = None
        if wait:
            path += f"&wait={wait:g}"
            timeout = self.timeout + wait
        payload = self._request("GET", path, timeout=timeout)
        return [JobEvent.from_dict(event) for event in payload["events"]]

    def follow_exploration(self, exploration_id: str, *, after: int = -1,
                           timeout: float | None = None, wait: float = 10.0):
        """Yield trial/state events live (long-polling) until the
        exploration's terminal state event."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            poll = wait
            if deadline is not None:
                poll = min(poll, deadline - time.monotonic())
                if poll <= 0:
                    raise TimeoutError(
                        f"exploration {exploration_id} event stream still open"
                    )
            batch = self.exploration_events(
                exploration_id, after=after, wait=max(poll, 0.05)
            )
            for event in batch:
                yield event
                if _is_stream_end(event):
                    return
            if batch:
                after = batch[-1].seq

    def exploration_report(self, exploration_id: str) -> dict:
        """GET the finished report (409/``JobStateError`` until done)."""
        return self._request(
            "GET", f"/v1/explorations/{exploration_id}/report"
        )
