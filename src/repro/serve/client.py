"""Clients of the placement service.

* :class:`ServiceClient` — in-process, async: wraps a running
  :class:`~repro.serve.service.PlacementService` directly (no sockets).
  This is what tests and the strategy-exploration loop use — the
  service becomes a callable evaluation backend.
* :class:`HttpServiceClient` — synchronous, over :mod:`http.client`:
  what ``repro submit`` / ``repro jobs`` use to talk to a ``repro
  serve`` process.  Raises the same typed errors as the service
  (:class:`QueueFullError` on 429 with the server's retry-after, …) so
  callers handle backpressure identically in and out of process.
"""

from __future__ import annotations

import http.client
import json
import time

from .jobs import (
    DONE,
    JobStateError,
    QueueFullError,
    ServeError,
    ServiceClosedError,
    UnknownJobError,
)


class JobFailedError(ServeError):
    """A waited-on job reached ``failed`` or ``cancelled``.

    Attributes:
        job: the terminal job (a :class:`~repro.serve.jobs.Job` for the
            in-process client, a wire dict for the HTTP client).
    """

    def __init__(self, job) -> None:
        self.job = job
        state = job.state if hasattr(job, "state") else job["state"]
        error = job.error if hasattr(job, "error") else job.get("error")
        job_id = job.id if hasattr(job, "id") else job["id"]
        super().__init__(f"job {job_id} {state}: {error or 'no result'}")


def make_request(design: str, *, flow: str = "puffer", config=None,
                 route: bool = False, timeout: float | None = None) -> dict:
    """Build the JSON-safe wire request both clients POST.

    ``config`` may be a :class:`repro.api.RunConfig` (serialized via
    ``to_dict``), an already-serialized wire dict, or ``None``.
    """
    if config is not None and hasattr(config, "to_dict"):
        config = config.to_dict()
    request: dict = {"design": design, "flow": flow}
    if config is not None:
        request["config"] = config
    if route:
        request["route"] = True
    if timeout is not None:
        request["timeout"] = timeout
    return request


def make_session_request(design: str, *, config=None, eco=None,
                         verify: str | None = None) -> dict:
    """Build the JSON-safe wire request both clients POST to
    ``/sessions``.  ``config``/``eco`` may be dataclasses (serialized
    via ``to_dict``) or already-serialized wire dicts."""
    if config is not None and hasattr(config, "to_dict"):
        config = config.to_dict()
    if eco is not None and hasattr(eco, "to_dict"):
        eco = eco.to_dict()
    request: dict = {"design": design}
    if config is not None:
        request["config"] = config
    if eco is not None:
        request["eco"] = eco
    if verify is not None:
        request["verify"] = verify
    return request


class ServiceClient:
    """In-process async client over a started :class:`PlacementService`."""

    def __init__(self, service) -> None:
        self.service = service

    async def submit(self, design: str, **kwargs):
        """Submit and return the :class:`~repro.serve.jobs.Job`."""
        return self.service.submit(make_request(design, **kwargs))

    async def wait(self, job_id: str, timeout: float | None = None):
        """Await the job's terminal state and return it."""
        return await self.service.wait(job_id, timeout=timeout)

    async def run(self, design: str, *, wait_timeout: float | None = None,
                  **kwargs) -> dict:
        """Submit, await completion, and return the result summary.

        Raises:
            JobFailedError: the job failed or was cancelled.
        """
        job = await self.submit(design, **kwargs)
        job = await self.wait(job.id, timeout=wait_timeout)
        if job.state != DONE:
            raise JobFailedError(job)
        return job.result

    def status(self, job_id: str):
        return self.service.status(job_id)

    def cancel(self, job_id: str):
        return self.service.cancel(job_id)

    def healthz(self) -> dict:
        return self.service.healthz()

    def metrics(self) -> dict:
        return self.service.metrics()

    # -- ECO sessions --------------------------------------------------

    def create_session(self, design: str, *, config=None, eco=None,
                       verify: str | None = None):
        """Open an incremental session; returns the live ``Session``."""
        return self.service.sessions.create(
            make_session_request(design, config=config, eco=eco, verify=verify)
        )

    async def wait_session(self, session_id: str, timeout: float | None = None):
        """Await the cold start (ready or failed) and return the session."""
        return await self.service.sessions.wait_ready(session_id, timeout=timeout)

    def submit_delta(self, session_id: str, delta):
        """Queue one delta (typed or wire dict) against a session."""
        if hasattr(delta, "to_dict"):
            delta = delta.to_dict()
        return self.service.sessions.submit_delta(session_id, delta)

    async def apply_delta(self, session_id: str, delta,
                          timeout: float | None = None) -> dict:
        """Submit a delta, await it, and return its result summary.

        Raises:
            JobFailedError: the delta failed.
        """
        record = self.submit_delta(session_id, delta)
        record = await self.service.sessions.wait_delta(
            session_id, record.id, timeout=timeout
        )
        if record.state != DONE:
            raise JobFailedError(record)
        return record.result

    def close_session(self, session_id: str):
        return self.service.sessions.close(session_id)


class HttpServiceClient:
    """Synchronous JSON client for a ``repro serve`` endpoint.

    Args:
        host, port: the server address.
        timeout: socket timeout per request, seconds.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8180,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = None if payload is None else json.dumps(payload)
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = conn.getresponse()
            data = json.loads(response.read().decode("utf-8") or "{}")
            status = response.status
            retry_after = response.getheader("Retry-After")
        finally:
            conn.close()
        if status < 400:
            return data
        self._raise(status, data.get("error", f"HTTP {status}"), retry_after)

    def _raise(self, status: int, message: str, retry_after) -> None:
        if status == 429:
            # Capacity isn't on the wire; keep the server's message.
            raise QueueFullError(capacity=-1,
                                 retry_after=float(retry_after or 1.0),
                                 message=message)
        if status == 404:
            raise UnknownJobError("<remote>", message=message)
        if status == 409:
            raise JobStateError(message)
        if status == 503:
            raise ServiceClosedError(message)
        if status == 400:
            raise ValueError(message)
        raise ServeError(f"HTTP {status}: {message}")

    # -- operations ----------------------------------------------------

    def submit(self, design: str, **kwargs) -> dict:
        """POST the job; returns its wire dict (``state`` = ``queued``
        or already ``done`` on a cache hit)."""
        return self._request("POST", "/jobs", make_request(design, **kwargs))

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self, state: str | None = None) -> list:
        path = "/jobs" if state is None else f"/jobs?state={state}"
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def wait(self, job_id: str, timeout: float | None = None,
             poll: float = 0.25) -> dict:
        """Poll until the job is terminal; returns its wire dict."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {job['state']}")
            time.sleep(poll)

    def run(self, design: str, *, wait_timeout: float | None = None,
            poll: float = 0.25, **kwargs) -> dict:
        """Submit, poll to completion, and return the result summary."""
        job = self.submit(design, **kwargs)
        if job["state"] != DONE:
            job = self.wait(job["id"], timeout=wait_timeout, poll=poll)
        if job["state"] != DONE:
            raise JobFailedError(job)
        return job["result"]

    # -- ECO sessions --------------------------------------------------

    def create_session(self, design: str, *, config=None, eco=None,
                       verify: str | None = None) -> dict:
        """POST the session; returns its wire dict (``initializing``)."""
        return self._request(
            "POST", "/sessions",
            make_session_request(design, config=config, eco=eco, verify=verify),
        )

    def session(self, session_id: str) -> dict:
        return self._request("GET", f"/sessions/{session_id}")

    def sessions(self) -> list:
        return self._request("GET", "/sessions")["sessions"]

    def close_session(self, session_id: str) -> dict:
        return self._request("DELETE", f"/sessions/{session_id}")

    def wait_session(self, session_id: str, timeout: float | None = None,
                     poll: float = 0.25) -> dict:
        """Poll until the cold start finishes; returns the wire dict."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            session = self.session(session_id)
            if session["state"] != "initializing":
                return session
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"session {session_id} still initializing")
            time.sleep(poll)

    def submit_delta(self, session_id: str, delta) -> dict:
        """POST one delta (typed or wire dict); returns its wire dict."""
        if hasattr(delta, "to_dict"):
            delta = delta.to_dict()
        return self._request("POST", f"/sessions/{session_id}/deltas", delta)

    def delta(self, session_id: str, delta_id: str) -> dict:
        return self._request("GET", f"/sessions/{session_id}/deltas/{delta_id}")

    def apply_delta(self, session_id: str, delta,
                    wait_timeout: float | None = None,
                    poll: float = 0.25) -> dict:
        """Submit a delta, poll to completion, return its result summary."""
        record = self.submit_delta(session_id, delta)
        deadline = None if wait_timeout is None else time.monotonic() + wait_timeout
        while record["state"] in ("queued", "running"):
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"delta {record['id']} still {record['state']}")
            time.sleep(poll)
            record = self.delta(session_id, record["id"])
        if record["state"] != DONE:
            raise JobFailedError(record)
        return record["result"]
