"""Typed job lifecycle and store for the placement service.

A job moves through the lifecycle::

    queued ──────────────► running ──► done / failed
       │                      │
       ├──► done (cache hit)  └──► cancelled
       └──► cancelled

Transitions are enforced — an illegal move raises :class:`JobStateError`
instead of silently corrupting the store — and every state change stamps
a wall-clock time so ``repro jobs`` can show queue latency and run time.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

#: Lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States a job never leaves.
TERMINAL = frozenset({DONE, FAILED, CANCELLED})

#: Legal transitions.  ``queued -> done`` is the submit-time cache hit.
_TRANSITIONS = {
    QUEUED: frozenset({RUNNING, DONE, CANCELLED}),
    RUNNING: frozenset({DONE, FAILED, CANCELLED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}


class ServeError(Exception):
    """Base class of service-boundary errors."""


class QueueFullError(ServeError):
    """The bounded job queue rejected a submission (backpressure).

    Attributes:
        retry_after: hint, in seconds, before the client should retry
            (becomes the HTTP ``Retry-After`` header).
    """

    def __init__(self, capacity: int, retry_after: float,
                 message: str | None = None) -> None:
        self.capacity = capacity
        self.retry_after = retry_after
        super().__init__(
            message
            or f"job queue is full (capacity {capacity}); retry in {retry_after:g}s"
        )


class UnknownJobError(ServeError, KeyError):
    """A job id with no entry in the store."""

    def __init__(self, job_id: str, message: str | None = None) -> None:
        self.job_id = job_id
        self._message = message or f"unknown job {job_id!r}"
        super().__init__(self._message)

    def __str__(self) -> str:
        # KeyError.__str__ repr-quotes its argument; keep the message plain
        # so it survives the HTTP error round-trip unmangled.
        return self._message


class JobStateError(ServeError):
    """An illegal lifecycle transition (e.g. cancelling a done job)."""


class ServiceClosedError(ServeError):
    """A submission after the service began draining."""


@dataclass
class Job:
    """One placement request and its lifecycle.

    Attributes:
        id: store-unique identifier (``job-N``).
        request: the validated wire request (JSON-safe dict).
        key: memoization key — ``stable_hash`` of the serialized config.
        state: current lifecycle state.
        result: JSON-safe result summary once ``done``.
        error: terminal error message once ``failed``.
        cache_hit: whether the result came from the artifact cache.
        timeout: per-job wall-clock budget in seconds (``None`` = none).
        client_id: fair-queue bucket the job dispatches from.
        priority: scheduling priority (larger int = more important).
        coalesced: the job attached to an in-flight duplicate instead of
            queueing its own execution.
        shard: index of the process shard that ran the job (``None``
            until running, and always in thread mode).
        submitted_at / started_at / finished_at: ``time.time()`` stamps.
    """

    id: str
    request: dict
    key: str
    state: str = QUEUED
    result: dict | None = None
    error: str | None = None
    cache_hit: bool = False
    timeout: float | None = None
    client_id: str = "default"
    priority: int = 0
    coalesced: bool = False
    shard: int | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    def transition(self, state: str) -> None:
        """Move to ``state``, stamping times; illegal moves raise."""
        if state not in _TRANSITIONS:
            raise JobStateError(f"unknown job state {state!r}")
        if state not in _TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.id} cannot move {self.state!r} -> {state!r}"
            )
        self.state = state
        now = time.time()
        if state == RUNNING:
            self.started_at = now
        elif state in TERMINAL:
            self.finished_at = now

    def to_wire(self) -> dict:
        """The JSON-safe status dict served over HTTP."""
        return {
            "id": self.id,
            "state": self.state,
            "key": self.key,
            "request": self.request,
            "result": self.result,
            "error": self.error,
            "cache_hit": self.cache_hit,
            "timeout": self.timeout,
            "client_id": self.client_id,
            "priority": self.priority,
            "coalesced": self.coalesced,
            "shard": self.shard,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class JobStore:
    """Insertion-ordered registry of every job the service has seen."""

    def __init__(self) -> None:
        self._jobs: dict = {}
        self._ids = itertools.count(1)

    def create(self, request: dict, key: str, timeout: float | None = None,
               client_id: str = "default", priority: int = 0) -> Job:
        """Register a fresh ``queued`` job for ``request``."""
        job = Job(id=f"job-{next(self._ids)}", request=request, key=key,
                  timeout=timeout, client_id=client_id, priority=priority)
        self._jobs[job.id] = job
        return job

    def get(self, job_id: str) -> Job:
        """The job for ``job_id``; raises :class:`UnknownJobError`."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def jobs(self, state: str | None = None) -> list:
        """All jobs in submission order, optionally filtered by state."""
        jobs = list(self._jobs.values())
        if state is not None:
            jobs = [job for job in jobs if job.state == state]
        return jobs

    def counts(self) -> dict:
        """``state -> count`` over every state (zeros included)."""
        counts = dict.fromkeys(STATES, 0)
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    def __len__(self) -> int:
        return len(self._jobs)
