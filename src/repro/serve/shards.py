"""Process shards: persistent single-worker executors hosting placements.

A :class:`ProcessShard` wraps one :class:`repro.runtime.TaskExecutor`
configured as a *serving shard* (``persistent=True, force_pool=True,
jobs=1``): a long-lived single-process pool that executes one placement
at a time out-of-process.  The shard inherits the executor's whole
reliability surface for free — per-task timeouts kill a hung worker
(reclaiming the CPU, unlike the thread mode's abandon-and-hope), a
crashed worker fails only its own job through the crash-quarantine
path, and the pool is transparently rebuilt afterwards so the next
submit lands in a fresh process.

:func:`run_sharded` is the module-level (picklable) entry point every
sharded job funnels through.  Inside the worker process it installs a
private :class:`repro.obs.Tracer` whose only sink is a
:class:`repro.serve.events.ProgressWriter`, so the progress spans the
flow already emits (gp iteration, padding round, RRR round) stream out
through the per-job progress file while full tracing stays off.  When
the runner cannot cross the process boundary (test fakes built from
closures), the executor degrades inline in the parent — ``run_sharded``
detects that by pid and leaves the parent's tracer untouched.
"""

from __future__ import annotations

import os
import threading

from .. import obs
from ..runtime import Task, TaskExecutor
from .events import ProgressWriter


def run_sharded(runner, request: dict, progress_path: str | None,
                parent_pid: int):
    """Execute ``runner(request)``, streaming progress when out-of-process.

    The tracer install is strictly worker-process-local: running inline
    in the parent (unpicklable runner fallback) must not clobber the
    parent's tracer, and the per-job tracer is uninstalled before the
    persistent worker picks up its next job.
    """
    if progress_path is None or os.getpid() == parent_pid:
        return runner(request)
    writer = ProgressWriter(progress_path)
    tracer = obs.Tracer(sinks=[writer])
    previous = obs.get_tracer()
    obs.set_tracer(tracer)
    try:
        return runner(request)
    finally:
        obs.set_tracer(previous)
        writer.close()


class ProcessShard:
    """One serving shard: a persistent single-process placement executor.

    The shard serializes its own submissions with a lock: after the
    service abandons a timed-out execution future, the executor thread
    may still be inside ``run_one`` for a moment while the pool worker
    is being killed, and the next job must wait for that to unwind
    rather than race the shared pool state.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.jobs_run = 0
        self._executor = TaskExecutor(
            jobs=1, retries=0, persistent=True, force_pool=True
        )
        self._lock = threading.Lock()

    def warm(self) -> None:
        """Fork the worker process up front (before helper threads)."""
        self._executor.warm()

    def execute(self, runner, request: dict, key: str,
                timeout: float | None = None,
                progress_path: str | None = None):
        """Blocking (thread-side): run one job, returning a TaskResult."""
        task = Task(
            key=key,
            fn=run_sharded,
            args=(runner, request, progress_path, os.getpid()),
            timeout=timeout,
            retries=0,
        )
        with self._lock:
            self.jobs_run += 1
            return self._executor.run_one(task)

    def abort(self) -> None:
        """Kill the worker process; the in-flight job fails, the shard
        recycles on the next submit."""
        self._executor.abort()

    def close(self) -> None:
        self._executor.close()

    def describe(self) -> dict:
        return {"index": self.index, "jobs_run": self.jobs_run}
