"""The asynchronous placement service: shards, fairness, memoization, events.

:class:`PlacementService` is the transport-independent core that both
the HTTP front end (:mod:`repro.serve.http`) and the in-process
:class:`repro.serve.client.ServiceClient` drive:

* a **bounded fair queue** (:class:`repro.serve.queueing.FairQueue`):
  per-client weighted round-robin dispatch, priority-first within a
  client, explicit backpressure via
  :class:`~repro.serve.jobs.QueueFullError` when full — and, before
  rejecting, **load-shedding**: a strictly higher-priority submission
  may evict the lowest-priority queued job instead of bouncing;
* **execution shards** — with ``ServiceConfig.shards > 0``, one
  :class:`repro.serve.shards.ProcessShard` per worker runs placements
  in dedicated worker *processes* through the runtime executor's
  persistent pool, so timeouts kill hung workers (the CPU comes back), a
  crashed worker fails only its own job, and cancellation of a running
  job terminates the process.  ``shards = 0`` keeps the PR-5 thread
  mode (documented degradations and all);
* **memoization** through :class:`repro.runtime.ArtifactCache` plus
  in-flight **coalescing**: a duplicate of a queued/running config
  attaches to the primary job instead of consuming a queue slot, and
  mirrors its result on completion (a failed/cancelled primary promotes
  the first follower to run for real);
* **progress streaming** — shard workers append gp-iteration /
  padding-round / RRR-round samples to a per-job progress file; the
  service pumps new lines into a per-job :class:`~repro.serve.events.EventLog`
  alongside every lifecycle transition, which
  ``GET /v1/jobs/<id>/events`` long-polls.

Requests are validated *at the boundary*: a bad config, flow, or verify
level raises before a job is created, so the queue only ever holds
runnable work.  Everything narrates into :mod:`repro.obs` —
``serve/request`` and ``serve/job`` spans, a ``serve/queue_depth``
gauge, and per-outcome counters — all visible on ``/v1/metrics``.

Degradation matrix (also in ``docs/api.md``): in thread mode a
timed-out or cancelled *running* job is marked terminal but its thread
runs to completion in the background; in shard mode the worker process
is killed, so the core is actually reclaimed and the next job starts in
a fresh worker.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field

from .. import obs
from ..runtime import ArtifactCache, Task, TaskExecutor, TaskTimeoutError, stable_hash
from ..runtime import shm as shm_runtime
from ..runtime.cache import MISSING
from .events import EventLog, read_new_progress
from .exploration import ExplorationManager
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobStateError,
    JobStore,
    QueueFullError,
    ServiceClosedError,
)
from .queueing import FairQueue
from .sessions import SessionManager
from .shards import ProcessShard

#: Request keys accepted at submit.
_REQUEST_KEYS = frozenset(
    {"design", "flow", "config", "route", "timeout", "priority", "client_id"}
)


def execute_request(request: dict) -> dict:
    """Run one normalized placement request and return its summary.

    The module-level worker function of the service (picklable, so the
    process shards can move it across process boundaries): rebuilds the
    :class:`repro.api.RunConfig` from the wire dict, places through
    :func:`repro.api.run`, and returns the JSON-safe
    :meth:`~repro.api.RunResult.to_summary`.

    When the service published the design to shared memory, the request
    carries a ``_shm`` handle and the worker attaches a zero-copy view
    instead of regenerating the benchmark from its name; a stale or
    unmappable handle falls back to the by-name path (the handle never
    changes *what* runs, only how the design reaches the worker).
    """
    from .. import api

    request = dict(request)
    handle = request.pop("_shm", None)
    design = request["design"]
    if handle is not None:
        try:
            design = shm_runtime.attach_design(
                shm_runtime.SharedDesignHandle.from_dict(handle)
            )
        except shm_runtime.SharedMemoryError:
            design = request["design"]
    config = api.RunConfig.from_dict(request.get("config") or {})
    result = api.run(
        design,
        flow=request.get("flow", "puffer"),
        config=config,
        route=bool(request.get("route", False)),
    )
    return result.to_summary()


@dataclass
class ServiceConfig:
    """Deployment knobs of :class:`PlacementService`.

    Attributes:
        workers: concurrent placement workers in thread mode (ignored
            when ``shards > 0`` — then there is one worker per shard).
        capacity: bounded-queue size; submissions beyond it are rejected
            with a retry-after hint (backpressure, not buffering) unless
            load-shedding frees a slot.
        cache_dir: artifact-cache directory enabling result memoization
            across jobs *and* server restarts (``None`` disables).
        default_timeout: per-job wall-clock budget in seconds when the
            request does not carry its own (``None`` = unlimited).
        retry_after: seconds hinted to rejected clients.
        shards: worker *processes*; ``0`` keeps single-process thread
            execution.  Shards stream progress events and enforce
            timeouts/cancellation by killing the worker.
        client_weights: ``client_id -> round-robin weight`` for the fair
            queue (missing clients weigh 1).
        progress_dir: directory for per-job progress files (shard mode);
            ``None`` creates (and owns) a temporary directory.
        progress_poll: parent-side poll interval for progress files.
        shared_memory: publish each job's design once into
            :mod:`repro.runtime.shm` and hand shard workers a zero-copy
            handle instead of regenerating the benchmark per job.
            ``None`` (the default) auto-enables for shard mode with the
            default runner; ``True`` forces it on for custom runners
            that understand the injected ``_shm`` request key; ``False``
            disables it.  Thread mode never uses it (no process
            boundary to cross).
    """

    workers: int = 2
    capacity: int = 8
    cache_dir: str | None = None
    default_timeout: float | None = None
    retry_after: float = 0.5
    shards: int = 0
    client_weights: dict | None = field(default=None)
    progress_dir: str | None = None
    progress_poll: float = 0.04
    shared_memory: bool | None = None


class PlacementService:
    """Transport-independent async job service over the placement flows.

    Args:
        config: deployment knobs (defaults throughout when omitted).
        runner: ``callable(request dict) -> result dict``; defaults to
            :func:`execute_request`.  Tests inject fakes here to
            exercise the lifecycle without placing.  In shard mode the
            runner must be picklable to actually cross the process
            boundary — an unpicklable fake degrades to in-process
            execution (no progress stream, thread-mode semantics).
    """

    def __init__(self, config: ServiceConfig | None = None, runner=None,
                 session_engine_factory=None) -> None:
        self.config = config or ServiceConfig()
        if self.config.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.config.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.config.shards < 0:
            raise ValueError("shards must be >= 0")
        self._runner = runner or execute_request
        self.sessions = SessionManager(engine_factory=session_engine_factory)
        self.explorations = ExplorationManager(self)
        self._store = JobStore()
        self._queue = FairQueue(
            self.config.capacity, weights=self.config.client_weights
        )
        self._events = EventLog()
        self._cache = (
            ArtifactCache(self.config.cache_dir) if self.config.cache_dir else None
        )
        self._executor = TaskExecutor(jobs=1, retries=0)
        self._shards = [ProcessShard(i) for i in range(self.config.shards)]
        use_shm = self.config.shared_memory
        if use_shm is None:
            use_shm = bool(self._shards) and runner is None
        self._shared_designs = (
            shm_runtime.SharedDesignCache()
            if use_shm and self._shards and shm_runtime.available()
            else None
        )
        self._progress_dir = self.config.progress_dir
        self._owns_progress_dir = False
        if self._shards and self._progress_dir is None:
            self._progress_dir = tempfile.mkdtemp(prefix="repro-serve-progress-")
            self._owns_progress_dir = True
        self._primary: dict = {}    # memo key -> primary job id (non-terminal)
        self._followers: dict = {}  # primary job id -> [follower job ids]
        self._workers: list = []
        self._done_events: dict = {}
        self._cancel_events: dict = {}
        self._draining = False
        self.started_at = time.time()
        self.counts = {
            "submitted": 0,
            "rejected": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "shed": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "PlacementService":
        """Spawn the worker pool (idempotent).  Must run on the loop.

        Shard mode forks the worker processes eagerly here, before the
        loop accumulates helper threads (fork safety) and before the
        first job pays the fork latency.
        """
        if self._workers:
            return self
        for shard in self._shards:
            shard.warm()
        if self._shards:
            self._workers = [
                asyncio.create_task(
                    self._worker(shard), name=f"serve-shard-{shard.index}"
                )
                for shard in self._shards
            ]
        else:
            self._workers = [
                asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
                for i in range(self.config.workers)
            ]
        return self

    async def drain(self) -> None:
        """Stop intake and wait for every accepted job to finish.

        Open ECO sessions are closed (their retained state GC'd) and
        live explorations are cancelled at their next cooperative
        checkpoint — incremental work cannot outlive the service that
        holds it.
        """
        self._draining = True
        await self.explorations.drain()
        self.sessions.close_all()
        await self._queue.join()

    async def stop(self) -> None:
        """Graceful shutdown: drain, then retire workers and shards."""
        await self.drain()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        for shard in self._shards:
            shard.close()
        if self._shared_designs is not None:
            self._shared_designs.close()
        if self._owns_progress_dir and self._progress_dir:
            shutil.rmtree(self._progress_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Request boundary
    # ------------------------------------------------------------------

    def submit(self, request: dict) -> Job:
        """Validate and enqueue ``request``; returns the created job.

        The request is a JSON-safe dict: ``design`` (suite benchmark
        name, required), ``flow`` (default ``"puffer"``), ``config``
        (a :meth:`repro.api.RunConfig.to_dict` payload, default config
        when omitted), ``route`` (bool), ``timeout`` (seconds),
        ``priority`` (int, larger = more important, default 0) and
        ``client_id`` (fair-queue bucket, default ``"default"``).
        Priority and client id shape *scheduling*, not the work, so
        they are excluded from the memoization key.

        Raises:
            ServiceClosedError: after :meth:`drain` began.
            QueueFullError: backpressure — queue at capacity and no
                strictly lower-priority job available to shed.
            repro.schema.SchemaError / ValueError /
            repro.api.UnknownFlowError: invalid request payloads.
        """
        with obs.span("serve/request", op="submit"):
            if self._draining:
                raise ServiceClosedError("service is draining; not accepting jobs")
            normalized, timeout, client_id, priority = self._normalize(request)
            key = stable_hash(normalized)

            # Cache hits and coalesced duplicates need no queue slot, so
            # they are admitted even at capacity.
            cached = MISSING if self._cache is None else self._cache.get(key)
            if cached is not MISSING:
                job = self._admit(normalized, key, timeout, client_id, priority)
                self._finish(job, DONE, result=cached, cache_hit=True)
                return job
            primary_id = self._primary.get(key)
            if primary_id is not None and not self._store.get(primary_id).terminal:
                job = self._admit(normalized, key, timeout, client_id, priority)
                job.coalesced = True
                self._followers.setdefault(primary_id, []).append(job.id)
                self.counts["coalesced"] += 1
                obs.counter("serve/coalesced").inc()
                return job

            if self._queue.full():
                victim = self._queue.shed_lowest(below=priority)
                if victim is None:
                    self.counts["rejected"] += 1
                    obs.counter("serve/rejected").inc()
                    raise QueueFullError(self.config.capacity,
                                         self.config.retry_after)
                self.counts["shed"] += 1
                obs.counter("serve/shed").inc()
                self._finish(
                    victim, CANCELLED,
                    error=(
                        f"load-shed: displaced by a priority-{priority} "
                        f"submission while queued at priority {victim.priority}"
                    ),
                )
            job = self._admit(normalized, key, timeout, client_id, priority)
            self._primary[key] = job.id
            self._queue.put_nowait(job)
            self._set_depth()
            return job

    def status(self, job_id: str) -> Job:
        """The job for ``job_id`` (raises :class:`UnknownJobError`)."""
        with obs.span("serve/request", op="status"):
            return self._store.get(job_id)

    def jobs(self, state: str | None = None) -> list:
        """All jobs in submission order, optionally filtered by state."""
        with obs.span("serve/request", op="jobs"):
            return self._store.jobs(state)

    def events(self, job_id: str, after: int = -1) -> list:
        """Events of ``job_id`` with ``seq > after`` (non-blocking)."""
        with obs.span("serve/request", op="events", job=job_id):
            self._store.get(job_id)  # raises UnknownJobError
            return self._events.events(job_id, after)

    async def wait_events(self, job_id: str, after: int = -1,
                          timeout: float | None = 30.0) -> tuple:
        """Long-poll for events past ``after``.

        Returns ``(events, stream_done)``: a possibly-empty ordered
        slice plus whether the job has reached a terminal state (after
        which no further events will ever arrive).
        """
        job = self._store.get(job_id)
        fresh = self._events.events(job_id, after)
        if not fresh and not job.terminal:
            fresh = await self._events.wait(job_id, after, timeout)
        return fresh, job.terminal

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediate when queued, forceful when running
        on a shard, best-effort in thread mode.

        Queued jobs leave the queue at once (freeing their slot).  A
        running job on a process shard has its worker process
        terminated — the executor's crash path surfaces the kill and
        the shard recycles for the next job.  In thread mode the worker
        thread cannot be preempted; the job is marked ``cancelled`` and
        its result discarded while the thread finishes in the
        background.

        Raises:
            UnknownJobError: no such job.
            JobStateError: the job already reached a terminal state.
        """
        with obs.span("serve/request", op="cancel", job=job_id):
            job = self._store.get(job_id)
            if job.terminal:
                raise JobStateError(f"job {job_id} is already {job.state}")
            if job.state == QUEUED:
                self._queue.remove(job)  # no-op for coalesced followers
                self._set_depth()
                self._finish(job, CANCELLED)
            else:
                self._cancel_events[job.id].set()
                if job.shard is not None and self._shards:
                    self._shards[job.shard].abort()
            return job

    async def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Await a job's terminal state and return it."""
        job = self._store.get(job_id)
        await asyncio.wait_for(self._done_events[job_id].wait(), timeout)
        return job

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        """The ``/v1/healthz`` payload."""
        return {
            "ok": True,
            "status": "draining" if self._draining else "serving",
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": self._queue.qsize(),
            "capacity": self.config.capacity,
            "workers": len(self._shards) or self.config.workers,
            "shards": [shard.describe() for shard in self._shards],
            "jobs": self._store.counts(),
            "sessions": self.sessions.counts(),
            "explorations": self.explorations.counts(),
        }

    def metrics(self) -> dict:
        """The ``/v1/metrics`` payload: service counters + obs
        instruments."""
        payload = {
            "queue_depth": self._queue.qsize(),
            "queue_depths_by_client": self._queue.depths(),
            "capacity": self.config.capacity,
            "workers": len(self._shards) or self.config.workers,
            "shards": [shard.describe() for shard in self._shards],
            "counters": dict(self.counts),
            "explorations": self.explorations.counts(),
            "cache": self._cache.stats() if self._cache is not None else None,
            "shared_designs": (
                self._shared_designs.stats()
                if self._shared_designs is not None else None
            ),
        }
        if obs.is_enabled():
            payload["obs"] = obs.get_tracer().metrics()
        return payload

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _normalize(self, request: dict) -> tuple:
        """Boundary validation -> (normal form, timeout, client, priority).

        The normal form is what the memo key hashes: explicit flow and
        route flag plus the fully-expanded config wire dict, so
        ``{"design": "OR1200"}`` and the same request spelled with an
        explicit default config memoize identically.  Scheduling fields
        (``priority``, ``client_id``, ``timeout``) never enter the key.
        """
        from .. import api

        if not isinstance(request, dict):
            raise ValueError(f"request must be a dict, got {type(request).__name__}")
        design = request.get("design")
        if not isinstance(design, str) or not design:
            raise ValueError("request needs a 'design' benchmark name")
        flow = request.get("flow", "puffer")
        if not isinstance(flow, str):
            raise ValueError("request 'flow' must be a flow name")
        api.resolve_flow(flow)  # raises UnknownFlowError early
        config = api.RunConfig.from_dict(request.get("config") or {})
        timeout = request.get("timeout", self.config.default_timeout)
        if timeout is not None:
            timeout = float(timeout)
            if timeout <= 0:
                raise ValueError("request 'timeout' must be positive")
        priority = request.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ValueError("request 'priority' must be an int")
        client_id = request.get("client_id", "default")
        if not isinstance(client_id, str) or not client_id:
            raise ValueError("request 'client_id' must be a non-empty string")
        unknown = set(request) - _REQUEST_KEYS
        if unknown:
            raise ValueError(f"unknown request keys: {sorted(unknown)}")
        normalized = {
            "design": design,
            "flow": flow,
            "route": bool(request.get("route", False)),
            "config": config.to_dict(),
        }
        return normalized, timeout, client_id, priority

    def _admit(self, normalized: dict, key: str, timeout, client_id: str,
               priority: int) -> Job:
        """Create a job plus its events/waiters bookkeeping."""
        job = self._store.create(
            normalized, key=key, timeout=timeout,
            client_id=client_id, priority=priority,
        )
        self._done_events[job.id] = asyncio.Event()
        self._cancel_events[job.id] = asyncio.Event()
        self._events.register(job.id)
        self._events.publish(job.id, "state", state=QUEUED)
        self.counts["submitted"] += 1
        obs.counter("serve/submitted").inc()
        return job

    def _set_depth(self) -> None:
        obs.gauge("serve/queue_depth").set(self._queue.qsize())

    def _finish(self, job: Job, state: str, result=None, error=None,
                cache_hit: bool = False) -> None:
        job.transition(state)
        job.result = result
        job.error = error
        job.cache_hit = cache_hit
        self.counts[state] += 1
        obs.counter(f"serve/{state}").inc()
        if cache_hit:
            self.counts["cache_hits"] += 1
            obs.counter("serve/cache_hit").inc()
        self._events.publish(job.id, "state", state=state)
        self._done_events[job.id].set()
        if self._primary.get(job.key) == job.id:
            del self._primary[job.key]
            self._settle_followers(job)

    def _settle_followers(self, primary: Job) -> None:
        """Resolve jobs coalesced onto ``primary`` after it settles.

        A successful primary mirrors its result onto every live
        follower.  A failed/cancelled primary promotes the first live
        follower to run for real (the rest re-coalesce onto it); when
        the queue cannot take it (draining or full), the followers are
        cancelled with an explanatory error instead of hanging.
        """
        followers = self._followers.pop(primary.id, [])
        pending = [
            job for job in (self._store.get(fid) for fid in followers)
            if not job.terminal
        ]
        if not pending:
            return
        if primary.state == DONE:
            for job in pending:
                self._finish(job, DONE, result=primary.result)
            return
        if self._draining or self._queue.full():
            for job in pending:
                self._finish(
                    job, CANCELLED,
                    error=(
                        f"coalesced onto {primary.id} which was "
                        f"{primary.state}; queue unavailable for a rerun"
                    ),
                )
            return
        leader, rest = pending[0], pending[1:]
        leader.coalesced = False
        self._primary[leader.key] = leader.id
        if rest:
            self._followers[leader.id] = [job.id for job in rest]
        self._queue.put_nowait(leader)
        self._set_depth()

    async def _worker(self, shard: ProcessShard | None = None) -> None:
        while True:
            job = await self._queue.get()
            try:
                self._set_depth()
                if job.state == QUEUED:  # skip jobs cancelled while queued
                    await self._run_job(job, shard)
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job, shard: ProcessShard | None = None) -> None:
        job.transition(RUNNING)
        self._events.publish(job.id, "state", state=RUNNING)
        if shard is not None:
            job.shard = shard.index
        cancel_event = self._cancel_events[job.id]
        loop = asyncio.get_running_loop()
        progress_path = pump = None
        if shard is not None and self._progress_dir:
            progress_path = os.path.join(
                self._progress_dir, f"{job.id}.progress.jsonl"
            )
        with obs.span("serve/job", job=job.id, design=job.request["design"],
                      flow=job.request["flow"]) as sp:
            exec_future = loop.run_in_executor(
                None, self._execute, job, shard, progress_path
            )
            if progress_path is not None:
                pump = asyncio.create_task(self._pump_progress(job, progress_path))
            cancel_task = asyncio.create_task(cancel_event.wait())
            # In shard mode the executor enforces the real budget by
            # killing the worker; the loop-side timeout is only a
            # backstop for inline-degraded runners.
            wait_timeout = job.timeout
            if shard is not None and wait_timeout is not None:
                wait_timeout += 10.0
            done, _pending = await asyncio.wait(
                {exec_future, cancel_task},
                timeout=wait_timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if exec_future in done:
                cancel_task.cancel()
                if cancel_event.is_set():
                    # Raced a cancel: the shard worker was terminated (or
                    # the thread result discarded) — cancellation wins.
                    self._finish(job, CANCELLED)
                else:
                    self._settle(job, exec_future)
            elif cancel_task in done:
                if shard is not None:
                    shard.abort()
                    # The kill surfaces through run_one promptly.
                    await asyncio.wait({exec_future}, timeout=15.0)
                self._abandon(exec_future)
                self._finish(job, CANCELLED)
            else:  # loop-side timeout backstop
                cancel_task.cancel()
                if shard is not None:
                    shard.abort()
                self._abandon(exec_future)
                self._finish(job, FAILED,
                             error=f"timeout after {job.timeout:g}s")
            if pump is not None:
                await pump
            sp.set(state=job.state, cache_hit=job.cache_hit, shard=job.shard)

    def _settle(self, job: Job, exec_future) -> None:
        """Record a completed executor future onto the job."""
        try:
            task_result = exec_future.result()
        except BaseException as exc:  # executor-layer failure
            self._finish(job, FAILED, error=f"{type(exc).__name__}: {exc}")
            return
        if not task_result.ok:
            error = task_result.error
            if isinstance(error, TaskTimeoutError) and job.timeout:
                message = f"timeout after {job.timeout:g}s (shard worker killed)"
            else:
                message = str(error)
            self._finish(job, FAILED, error=message)
            return
        result = task_result.value
        if self._cache is not None:
            self._cache.put(job.key, result)
        self._finish(job, DONE, result=result)

    def _execute(self, job: Job, shard: ProcessShard | None = None,
                 progress_path: str | None = None):
        """Thread-side: funnel the job through its executor."""
        if shard is None:
            task = Task(key=job.id, fn=self._runner, args=(job.request,),
                        retries=0)
            return self._executor.run_one(task)
        request = job.request
        if self._shared_designs is not None:
            # Publish-once (off the event loop — this thread), then ship
            # the tiny handle instead of letting the worker regenerate
            # the design.  A publish failure degrades silently: the
            # request goes out unmodified and the worker falls back.
            handle = self._shared_designs.handle_for_request(request)
            if handle is not None:
                request = dict(request)
                request["_shm"] = handle.to_dict()
        return shard.execute(
            self._runner, request, key=job.id,
            timeout=job.timeout, progress_path=progress_path,
        )

    async def _pump_progress(self, job: Job, path: str) -> None:
        """Poll the job's progress file into its event stream.

        Sleeps in ``progress_poll`` slices but wakes immediately on the
        job's done event, so a finished job never waits out a poll
        interval before its worker slot frees up.
        """
        done = self._done_events[job.id]
        offset = 0
        try:
            while not job.terminal:
                offset = self._publish_progress(job, path, offset)
                try:
                    await asyncio.wait_for(done.wait(), self.config.progress_poll)
                except asyncio.TimeoutError:
                    pass
            self._publish_progress(job, path, offset)
        finally:
            try:
                os.unlink(path)
            except OSError:
                pass

    def _publish_progress(self, job: Job, path: str, offset: int) -> int:
        samples, offset = read_new_progress(path, offset)
        for sample in samples:
            self._events.publish(job.id, "progress", progress=sample)
            obs.counter("serve/progress_events").inc()
        return offset

    @staticmethod
    def _abandon(exec_future) -> None:
        """Detach from an execution we no longer await; swallow its
        outcome."""
        exec_future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
