"""The asynchronous placement service: queue, workers, memoization.

:class:`PlacementService` is the transport-independent core that both
the HTTP front end (:mod:`repro.serve.http`) and the in-process
:class:`repro.serve.client.ServiceClient` drive:

* a **bounded queue** (``ServiceConfig.capacity``) with explicit
  backpressure — a full queue rejects the submission with
  :class:`~repro.serve.jobs.QueueFullError` carrying a retry-after hint
  instead of buffering unboundedly;
* a **worker pool** of asyncio tasks, each delegating the CPU-heavy
  placement to a thread running the :class:`repro.runtime.TaskExecutor`
  submission hook (:meth:`~repro.runtime.TaskExecutor.run_one`);
* **memoization** through :class:`repro.runtime.ArtifactCache`, keyed by
  :func:`repro.runtime.stable_hash` of the normalized request (the
  serialized :class:`repro.api.RunConfig` wire dict), so a duplicate
  submission is served from disk without consuming queue capacity;
* per-job **timeout** and **cancellation**, and a graceful
  :meth:`~PlacementService.drain` that stops intake and lets accepted
  jobs finish.

Requests are validated *at the boundary*: a bad config, flow, or verify
level raises before a job is created, so the queue only ever holds
runnable work.  Everything narrates into :mod:`repro.obs` —
``serve/request`` and ``serve/job`` spans, a ``serve/queue_depth``
gauge, and per-outcome counters — all visible on ``/metrics``.

A note on timeouts: placement runs in a thread, and Python threads
cannot be preempted, so a timed-out or cancelled *running* job is marked
``failed``/``cancelled`` and its result discarded while the worker
thread runs to completion in the background (the same documented
degradation as the runtime's inline executor).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from .. import obs
from ..runtime import ArtifactCache, Task, TaskExecutor, stable_hash
from ..runtime.cache import MISSING
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobStateError,
    JobStore,
    QueueFullError,
    ServiceClosedError,
)
from .sessions import SessionManager


def execute_request(request: dict) -> dict:
    """Run one normalized placement request and return its summary.

    The module-level worker function of the service (picklable, so the
    pool can later move across process boundaries): rebuilds the
    :class:`repro.api.RunConfig` from the wire dict, places through
    :func:`repro.api.run`, and returns the JSON-safe
    :meth:`~repro.api.RunResult.to_summary`.
    """
    from .. import api

    config = api.RunConfig.from_dict(request.get("config") or {})
    result = api.run(
        request["design"],
        flow=request.get("flow", "puffer"),
        config=config,
        route=bool(request.get("route", False)),
    )
    return result.to_summary()


@dataclass
class ServiceConfig:
    """Deployment knobs of :class:`PlacementService`.

    Attributes:
        workers: concurrent placement workers (asyncio tasks, each
            executing one job at a time in a thread).
        capacity: bounded-queue size; submissions beyond it are rejected
            with a retry-after hint (backpressure, not buffering).
        cache_dir: artifact-cache directory enabling result memoization
            across jobs *and* server restarts (``None`` disables).
        default_timeout: per-job wall-clock budget in seconds when the
            request does not carry its own (``None`` = unlimited).
        retry_after: seconds hinted to rejected clients.
    """

    workers: int = 2
    capacity: int = 8
    cache_dir: str | None = None
    default_timeout: float | None = None
    retry_after: float = 0.5


class PlacementService:
    """Transport-independent async job service over the placement flows.

    Args:
        config: deployment knobs (defaults throughout when omitted).
        runner: ``callable(request dict) -> result dict`` executed in a
            worker thread; defaults to :func:`execute_request`.  Tests
            inject fakes here to exercise the lifecycle without placing.
    """

    def __init__(self, config: ServiceConfig | None = None, runner=None,
                 session_engine_factory=None) -> None:
        self.config = config or ServiceConfig()
        if self.config.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.config.capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._runner = runner or execute_request
        self.sessions = SessionManager(engine_factory=session_engine_factory)
        self._store = JobStore()
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.capacity)
        self._cache = (
            ArtifactCache(self.config.cache_dir) if self.config.cache_dir else None
        )
        self._executor = TaskExecutor(jobs=1, retries=0)
        self._workers: list = []
        self._done_events: dict = {}
        self._cancel_events: dict = {}
        self._draining = False
        self.started_at = time.time()
        self.counts = {
            "submitted": 0,
            "rejected": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 0,
            "cache_hits": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "PlacementService":
        """Spawn the worker pool (idempotent).  Must run on the loop."""
        if self._workers:
            return self
        self._workers = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.config.workers)
        ]
        return self

    async def drain(self) -> None:
        """Stop intake and wait for every accepted job to finish.

        Open ECO sessions are closed (their retained state GC'd) —
        incremental work cannot outlive the service that holds it.
        """
        self._draining = True
        self.sessions.close_all()
        await self._queue.join()

    async def stop(self) -> None:
        """Graceful shutdown: drain, then retire the worker pool."""
        await self.drain()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []

    # ------------------------------------------------------------------
    # Request boundary
    # ------------------------------------------------------------------

    def submit(self, request: dict) -> Job:
        """Validate and enqueue ``request``; returns the created job.

        The request is a JSON-safe dict: ``design`` (suite benchmark
        name, required), ``flow`` (default ``"puffer"``), ``config``
        (a :meth:`repro.api.RunConfig.to_dict` payload, default config
        when omitted), ``route`` (bool), ``timeout`` (seconds).

        Raises:
            ServiceClosedError: after :meth:`drain` began.
            QueueFullError: backpressure — queue at capacity.
            repro.schema.SchemaError / ValueError /
            repro.api.UnknownFlowError: invalid request payloads.
        """
        with obs.span("serve/request", op="submit"):
            if self._draining:
                raise ServiceClosedError("service is draining; not accepting jobs")
            normalized, timeout = self._normalize(request)
            if self._queue.full():
                self.counts["rejected"] += 1
                obs.counter("serve/rejected").inc()
                raise QueueFullError(self.config.capacity, self.config.retry_after)
            job = self._store.create(normalized, key=stable_hash(normalized),
                                     timeout=timeout)
            self._done_events[job.id] = asyncio.Event()
            self._cancel_events[job.id] = asyncio.Event()
            self.counts["submitted"] += 1
            obs.counter("serve/submitted").inc()
            cached = self._cache_lookup(job)
            if cached is not MISSING:
                self._finish(job, DONE, result=cached, cache_hit=True)
                return job
            self._queue.put_nowait(job)
            self._set_depth()
            return job

    def status(self, job_id: str) -> Job:
        """The job for ``job_id`` (raises :class:`UnknownJobError`)."""
        with obs.span("serve/request", op="status"):
            return self._store.get(job_id)

    def jobs(self, state: str | None = None) -> list:
        """All jobs in submission order, optionally filtered by state."""
        with obs.span("serve/request", op="jobs"):
            return self._store.jobs(state)

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediate when queued, best-effort when running.

        A running job's worker thread cannot be preempted; the job is
        marked ``cancelled`` (and its result discarded) as soon as the
        worker observes the cancellation.

        Raises:
            UnknownJobError: no such job.
            JobStateError: the job already reached a terminal state.
        """
        with obs.span("serve/request", op="cancel", job=job_id):
            job = self._store.get(job_id)
            if job.terminal:
                raise JobStateError(f"job {job_id} is already {job.state}")
            if job.state == QUEUED:
                # Stays in the asyncio queue; the worker skips it.
                self._finish(job, CANCELLED)
            else:
                self._cancel_events[job.id].set()
            return job

    async def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Await a job's terminal state and return it."""
        job = self._store.get(job_id)
        await asyncio.wait_for(self._done_events[job_id].wait(), timeout)
        return job

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        """The ``/healthz`` payload."""
        return {
            "ok": True,
            "status": "draining" if self._draining else "serving",
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": self._queue.qsize(),
            "capacity": self.config.capacity,
            "workers": self.config.workers,
            "jobs": self._store.counts(),
            "sessions": self.sessions.counts(),
        }

    def metrics(self) -> dict:
        """The ``/metrics`` payload: service counters + obs instruments."""
        payload = {
            "queue_depth": self._queue.qsize(),
            "capacity": self.config.capacity,
            "workers": self.config.workers,
            "counters": dict(self.counts),
            "cache": self._cache.stats() if self._cache is not None else None,
        }
        if obs.is_enabled():
            payload["obs"] = obs.get_tracer().metrics()
        return payload

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _normalize(self, request: dict) -> tuple:
        """Boundary validation -> (normal-form request, timeout).

        The normal form is what the memo key hashes: explicit flow and
        route flag plus the fully-expanded config wire dict, so
        ``{"design": "OR1200"}`` and the same request spelled with an
        explicit default config memoize identically.
        """
        from .. import api

        if not isinstance(request, dict):
            raise ValueError(f"request must be a dict, got {type(request).__name__}")
        design = request.get("design")
        if not isinstance(design, str) or not design:
            raise ValueError("request needs a 'design' benchmark name")
        flow = request.get("flow", "puffer")
        if not isinstance(flow, str):
            raise ValueError("request 'flow' must be a flow name")
        api.resolve_flow(flow)  # raises UnknownFlowError early
        config = api.RunConfig.from_dict(request.get("config") or {})
        timeout = request.get("timeout", self.config.default_timeout)
        if timeout is not None:
            timeout = float(timeout)
            if timeout <= 0:
                raise ValueError("request 'timeout' must be positive")
        unknown = set(request) - {"design", "flow", "config", "route", "timeout"}
        if unknown:
            raise ValueError(f"unknown request keys: {sorted(unknown)}")
        normalized = {
            "design": design,
            "flow": flow,
            "route": bool(request.get("route", False)),
            "config": config.to_dict(),
        }
        return normalized, timeout

    def _cache_lookup(self, job: Job):
        if self._cache is None:
            return MISSING
        value = self._cache.get(job.key)
        return value

    def _set_depth(self) -> None:
        obs.gauge("serve/queue_depth").set(self._queue.qsize())

    def _finish(self, job: Job, state: str, result=None, error=None,
                cache_hit: bool = False) -> None:
        job.transition(state)
        job.result = result
        job.error = error
        job.cache_hit = cache_hit
        self.counts[state] += 1
        obs.counter(f"serve/{state}").inc()
        if cache_hit:
            self.counts["cache_hits"] += 1
            obs.counter("serve/cache_hit").inc()
        self._done_events[job.id].set()

    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                self._set_depth()
                if job.state == QUEUED:  # skip jobs cancelled while queued
                    await self._run_job(job)
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        job.transition(RUNNING)
        cancel_event = self._cancel_events[job.id]
        loop = asyncio.get_running_loop()
        with obs.span("serve/job", job=job.id, design=job.request["design"],
                      flow=job.request["flow"]) as sp:
            exec_future = loop.run_in_executor(None, self._execute, job)
            cancel_task = asyncio.create_task(cancel_event.wait())
            done, _pending = await asyncio.wait(
                {exec_future, cancel_task},
                timeout=job.timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if exec_future in done:
                cancel_task.cancel()
                self._settle(job, exec_future)
            elif cancel_task in done:
                self._abandon(exec_future)
                self._finish(job, CANCELLED)
            else:  # per-job timeout
                cancel_task.cancel()
                self._abandon(exec_future)
                self._finish(job, FAILED,
                             error=f"timeout after {job.timeout:g}s")
            sp.set(state=job.state, cache_hit=job.cache_hit)

    def _settle(self, job: Job, exec_future) -> None:
        """Record a completed executor future onto the job."""
        try:
            task_result = exec_future.result()
        except BaseException as exc:  # executor-layer failure
            self._finish(job, FAILED, error=f"{type(exc).__name__}: {exc}")
            return
        if not task_result.ok:
            self._finish(job, FAILED, error=str(task_result.error))
            return
        result = task_result.value
        if self._cache is not None:
            self._cache.put(job.key, result)
        self._finish(job, DONE, result=result)

    def _execute(self, job: Job):
        """Thread-side: funnel the job through the runtime executor."""
        task = Task(key=job.id, fn=self._runner, args=(job.request,), retries=0)
        return self._executor.run_one(task)

    @staticmethod
    def _abandon(exec_future) -> None:
        """Detach from a thread we cannot stop; swallow its outcome."""
        exec_future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
