"""Stateful ECO sessions on the placement service.

A session owns a converged :class:`repro.eco.EcoSession` and accepts
incremental deltas keyed to it.  The lifecycle::

    initializing ──► ready ⇄ busy ──► closed
          │                    │
          └──────► failed ◄────┘

The cold start runs in a worker thread while the session reports
``initializing``; deltas submitted to a session are applied strictly in
submission order (an asyncio lock serializes them — incremental state is
inherently sequential), each as its own tracked :class:`DeltaJob` with
``queued -> running -> done/failed`` states.  Closing a session (or
draining the service) releases the retained engine state — sessions are
GC'd on drain, exactly like the job queue refuses new work.
"""

from __future__ import annotations

import asyncio
import itertools
import time

from .. import obs
from ..schema import SchemaError
from .jobs import QueueFullError, ServeError, ServiceClosedError

#: Session lifecycle states.
INITIALIZING = "initializing"
READY = "ready"
BUSY = "busy"
FAILED = "failed"
CLOSED = "closed"

SESSION_STATES = (INITIALIZING, READY, BUSY, FAILED, CLOSED)

#: Delta lifecycle states (a subset of the job lifecycle).
DELTA_QUEUED = "queued"
DELTA_RUNNING = "running"
DELTA_DONE = "done"
DELTA_FAILED = "failed"


class UnknownSessionError(ServeError, KeyError):
    """A session id with no entry in the manager."""

    def __init__(self, session_id: str, message: str | None = None) -> None:
        self.session_id = session_id
        self._message = message or f"unknown session {session_id!r}"
        super().__init__(self._message)

    def __str__(self) -> str:
        return self._message


class UnknownDeltaError(ServeError, KeyError):
    """A delta id with no entry in its session."""

    def __init__(self, delta_id: str, message: str | None = None) -> None:
        self.delta_id = delta_id
        self._message = message or f"unknown delta {delta_id!r}"
        super().__init__(self._message)

    def __str__(self) -> str:
        return self._message


class SessionStateError(ServeError):
    """An operation a session's current state does not allow."""


def build_engine(request: dict):
    """Default engine factory: an :class:`repro.eco.EcoSession` from the
    normalized session request (tests inject fakes instead)."""
    from ..api import RunConfig
    from ..eco import EcoParams, EcoSession

    config = RunConfig.from_dict(request.get("config") or {})
    eco = EcoParams.from_dict(request.get("eco") or {})
    return EcoSession(request["design"], config=config, eco=eco)


class DeltaJob:
    """One submitted delta and its lifecycle within a session."""

    def __init__(self, delta_id: str, session_id: str, payload: dict) -> None:
        self.id = delta_id
        self.session = session_id
        self.payload = payload
        self.state = DELTA_QUEUED
        self.result: dict | None = None
        self.error: str | None = None
        self.submitted_at = time.time()
        self.finished_at: float | None = None
        self.done_event = asyncio.Event()

    def finish(self, state: str, result=None, error=None) -> None:
        self.state = state
        self.result = result
        self.error = error
        self.finished_at = time.time()
        self.done_event.set()

    def to_wire(self) -> dict:
        return {
            "id": self.id,
            "session": self.session,
            "state": self.state,
            "delta": self.payload,
            "result": self.result,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }


class Session:
    """One live ECO session: engine + delta history + serialization lock."""

    def __init__(self, session_id: str, request: dict, engine) -> None:
        self.id = session_id
        self.request = request
        self.engine = engine
        self.state = INITIALIZING
        self.error: str | None = None
        self.baseline: dict | None = None
        self.deltas: dict = {}
        self.created_at = time.time()
        self.lock = asyncio.Lock()
        self.ready_event = asyncio.Event()
        self._delta_ids = itertools.count(1)

    @property
    def open(self) -> bool:
        return self.state in (INITIALIZING, READY, BUSY)

    def next_delta_id(self) -> str:
        return f"{self.id}-d{next(self._delta_ids)}"

    def to_wire(self) -> dict:
        """The JSON-safe status dict served over HTTP."""
        return {
            "id": self.id,
            "state": self.state,
            "request": self.request,
            "version": getattr(self.engine, "version", -1),
            "baseline": self.baseline,
            "deltas": [d.to_wire() for d in self.deltas.values()],
            "error": self.error,
            "created_at": self.created_at,
        }


class SessionManager:
    """Owns every session; serializes each session's work on the loop.

    Args:
        engine_factory: ``callable(request dict) -> engine`` where the
            engine exposes ``start()``, ``apply(delta, verify=...)``
            (both returning objects with ``to_summary()``), and
            ``close()``.  Defaults to :func:`build_engine`.
        max_pending: per-session bound on queued deltas (backpressure).
        retry_after: seconds hinted to rejected clients.
    """

    def __init__(self, engine_factory=None, max_pending: int = 16,
                 retry_after: float = 0.5) -> None:
        self._factory = engine_factory or build_engine
        self._sessions: dict = {}
        self._ids = itertools.count(1)
        self._tasks: set = set()
        self.max_pending = max_pending
        self.retry_after = retry_after
        self.draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def create(self, request: dict) -> Session:
        """Validate ``request``, build the engine, start converging.

        The request is a JSON-safe dict: ``design`` (required), and
        optional ``config`` (:class:`repro.api.RunConfig` wire dict),
        ``eco`` (:class:`repro.eco.EcoParams` wire dict), and ``verify``
        (checker level applied to every delta, default ``"cheap"``).
        """
        with obs.span("serve/session", op="create"):
            if self.draining:
                raise ServiceClosedError(
                    "service is draining; not accepting sessions"
                )
            normalized = self._normalize(request)
            engine = self._factory(normalized)
            session = Session(f"sess-{next(self._ids)}", normalized, engine)
            self._sessions[session.id] = session
            obs.counter("eco/sessions").inc()
            self._spawn(self._initialize(session))
            return session

    def get(self, session_id: str) -> Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise UnknownSessionError(session_id) from None

    def sessions(self) -> list:
        """All sessions in creation order."""
        return list(self._sessions.values())

    def counts(self) -> dict:
        """``state -> count`` over every session state (zeros included)."""
        counts = dict.fromkeys(SESSION_STATES, 0)
        for session in self._sessions.values():
            counts[session.state] += 1
        return counts

    def close(self, session_id: str) -> Session:
        """Release a session's retained state (idempotent)."""
        session = self.get(session_id)
        if session.state != CLOSED:
            session.state = CLOSED
            session.ready_event.set()
            close = getattr(session.engine, "close", None)
            if close is not None:
                close()
            obs.counter("eco/sessions_closed").inc()
        return session

    def close_all(self) -> None:
        """Drain-time GC: close every session and refuse new ones."""
        self.draining = True
        for session_id in list(self._sessions):
            self.close(session_id)

    async def wait_ready(self, session_id: str, timeout: float | None = None) -> Session:
        """Await the end of initialization (ready or failed)."""
        session = self.get(session_id)
        await asyncio.wait_for(session.ready_event.wait(), timeout)
        return session

    # ------------------------------------------------------------------
    # Deltas
    # ------------------------------------------------------------------

    def submit_delta(self, session_id: str, payload: dict) -> DeltaJob:
        """Queue one delta payload against a session.

        Raises:
            UnknownSessionError: no such session.
            SessionStateError: the session is closed or failed.
            QueueFullError: too many deltas already pending.
            repro.schema.SchemaError: an invalid delta payload.
        """
        with obs.span("serve/session", op="delta", session=session_id):
            if self.draining:
                raise ServiceClosedError(
                    "service is draining; not accepting deltas"
                )
            session = self.get(session_id)
            if not session.open:
                raise SessionStateError(
                    f"session {session_id} is {session.state}"
                )
            from ..eco import delta_from_dict

            delta_from_dict(payload)  # boundary validation; raises SchemaError
            pending = sum(
                1 for d in session.deltas.values() if d.state == DELTA_QUEUED
            )
            if pending >= self.max_pending:
                raise QueueFullError(self.max_pending, self.retry_after)
            delta = DeltaJob(session.next_delta_id(), session.id, dict(payload))
            session.deltas[delta.id] = delta
            self._spawn(self._apply(session, delta))
            return delta

    def delta(self, session_id: str, delta_id: str) -> DeltaJob:
        session = self.get(session_id)
        try:
            return session.deltas[delta_id]
        except KeyError:
            raise UnknownDeltaError(delta_id) from None

    async def wait_delta(self, session_id: str, delta_id: str,
                         timeout: float | None = None) -> DeltaJob:
        """Await a delta's terminal state and return it."""
        delta = self.delta(session_id, delta_id)
        await asyncio.wait_for(delta.done_event.wait(), timeout)
        return delta

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _normalize(request: dict) -> dict:
        from ..api import RunConfig
        from ..eco import EcoParams
        from ..verify import LEVELS

        if not isinstance(request, dict):
            raise ValueError(
                f"session request must be a dict, got {type(request).__name__}"
            )
        design = request.get("design")
        if not isinstance(design, str) or not design:
            raise ValueError("session request needs a 'design' benchmark name")
        unknown = set(request) - {"design", "config", "eco", "verify"}
        if unknown:
            raise ValueError(f"unknown session request keys: {sorted(unknown)}")
        config = RunConfig.from_dict(request.get("config") or {})
        eco = EcoParams.from_dict(request.get("eco") or {})
        verify = request.get("verify", "cheap")
        if verify not in LEVELS:
            raise ValueError(
                f"unknown verify level {verify!r}; expected one of {LEVELS}"
            )
        return {
            "design": design,
            "config": config.to_dict(),
            "eco": eco.to_dict(),
            "verify": verify,
        }

    def _spawn(self, coro) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _initialize(self, session: Session) -> None:
        loop = asyncio.get_running_loop()
        async with session.lock:
            if session.state == CLOSED:
                return
            try:
                result = await loop.run_in_executor(None, session.engine.start)
            except BaseException as exc:
                if session.state != CLOSED:
                    session.state = FAILED
                    session.error = f"{type(exc).__name__}: {exc}"
                    obs.counter("eco/sessions_failed").inc()
            else:
                session.baseline = result.to_summary()
                if session.state == INITIALIZING:
                    session.state = READY
            finally:
                session.ready_event.set()

    async def _apply(self, session: Session, delta: DeltaJob) -> None:
        loop = asyncio.get_running_loop()
        async with session.lock:
            if not session.open:
                delta.finish(DELTA_FAILED,
                             error=f"session {session.id} is {session.state}")
                return
            delta.state = DELTA_RUNNING
            was = session.state
            session.state = BUSY
            verify = session.request.get("verify", "cheap")
            try:
                result = await loop.run_in_executor(
                    None, lambda: session.engine.apply(delta.payload, verify=verify)
                )
            except (SchemaError, ValueError, TypeError, RuntimeError) as exc:
                # A bad delta fails the delta, not the session.
                delta.finish(DELTA_FAILED, error=f"{type(exc).__name__}: {exc}")
                if session.state == BUSY:
                    session.state = was
            except BaseException as exc:
                delta.finish(DELTA_FAILED, error=f"{type(exc).__name__}: {exc}")
                if session.state == BUSY:
                    session.state = FAILED
                    session.error = f"{type(exc).__name__}: {exc}"
            else:
                delta.finish(DELTA_DONE, result=result.to_summary())
                obs.counter("eco/deltas_applied").inc()
                if session.state == BUSY:
                    session.state = READY
