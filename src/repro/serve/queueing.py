"""Fair, shed-capable job queue for the placement service.

:class:`FairQueue` replaces the plain ``asyncio.Queue`` the service used
through PR 5.  It keeps the same externally observable contract — a
bounded buffer with ``put_nowait`` / ``get`` / ``task_done`` / ``join``
— and adds the two scheduling policies the serving tier needs once many
clients share one deployment:

* **per-client fairness** — jobs are bucketed by ``client_id`` and
  dispatched by weighted round-robin across clients, so one chatty
  client saturating the queue cannot starve everyone else.  A client's
  integer weight (default 1) is how many jobs it may dispatch per
  round-robin cycle.
* **priority + load-shedding** — within one client's bucket the highest
  ``priority`` (larger int wins, default 0) dispatches first, FIFO
  among equals.  When the queue is full, :meth:`shed_lowest` lets the
  service evict the globally lowest-priority queued job to make room
  for a strictly more important submission; among equals the newest is
  shed so long-waiting work keeps its place.

The queue is loop-confined like the rest of the service: every method
must be called from the event-loop thread, so no locks are needed.
"""

from __future__ import annotations

import asyncio
from collections import deque


class FairQueue:
    """Bounded multi-client job buffer with weighted-RR dispatch.

    Args:
        capacity: maximum number of buffered (queued) jobs.
        weights: ``client_id -> dispatch weight`` (missing clients get
            weight 1; non-positive weights are clamped to 1).
    """

    def __init__(self, capacity: int, weights: dict | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._weights = dict(weights or {})
        self._buckets: dict = {}   # client_id -> deque[Job]
        self._ring: list = []      # client ids in first-seen order
        self._credits: dict = {}   # client_id -> remaining slots this cycle
        self._cursor = 0
        self._size = 0
        self._unfinished = 0
        self._getters: deque = deque()
        self._drained: deque = deque()

    # -- introspection -------------------------------------------------

    def qsize(self) -> int:
        return self._size

    def full(self) -> bool:
        return self._size >= self.capacity

    def weight(self, client_id: str) -> int:
        return max(1, int(self._weights.get(client_id, 1)))

    def depths(self) -> dict:
        """``client_id -> queued jobs`` for every client with work."""
        return {
            cid: len(bucket)
            for cid, bucket in self._buckets.items()
            if bucket
        }

    # -- producer side -------------------------------------------------

    def put_nowait(self, job) -> None:
        """Buffer ``job`` (keyed by ``job.client_id``); raises when full."""
        if self.full():
            raise asyncio.QueueFull(f"queue at capacity {self.capacity}")
        client = job.client_id
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = deque()
            self._ring.append(client)
            self._credits[client] = self.weight(client)
        bucket.append(job)
        self._size += 1
        self._unfinished += 1
        while self._getters:
            getter = self._getters.popleft()
            if not getter.done():
                getter.set_result(None)
                break

    # -- consumer side -------------------------------------------------

    async def get(self):
        """The next job per fairness policy; waits while empty."""
        while self._size == 0:
            getter = asyncio.get_running_loop().create_future()
            self._getters.append(getter)
            await getter
        return self._pick()

    def _pick(self):
        """Weighted-RR across clients, priority-then-FIFO within one."""
        n = len(self._ring)
        for _cycle in range(2):
            for step in range(n):
                client = self._ring[(self._cursor + step) % n]
                bucket = self._buckets.get(client)
                if not bucket or self._credits.get(client, 0) <= 0:
                    continue
                self._credits[client] -= 1
                self._cursor = (self._cursor + step + 1) % n
                job = self._pop_best(bucket)
                self._size -= 1
                return job
            # Every client with work exhausted its credits: new cycle.
            for client in self._ring:
                self._credits[client] = self.weight(client)
        raise RuntimeError("FairQueue._pick on an empty queue")  # pragma: no cover

    @staticmethod
    def _pop_best(bucket: deque):
        """Remove and return the oldest highest-priority job."""
        best = 0
        for i in range(1, len(bucket)):
            if bucket[i].priority > bucket[best].priority:
                best = i
        job = bucket[best]
        del bucket[best]
        return job

    def task_done(self) -> None:
        """One previously-gotten job finished processing."""
        if self._unfinished <= 0:
            raise ValueError("task_done() called more times than items buffered")
        self._unfinished -= 1
        if self._unfinished == 0:
            while self._drained:
                waiter = self._drained.popleft()
                if not waiter.done():
                    waiter.set_result(None)

    async def join(self) -> None:
        """Wait until every buffered job has been processed."""
        while self._unfinished:
            waiter = asyncio.get_running_loop().create_future()
            self._drained.append(waiter)
            await waiter

    # -- eviction ------------------------------------------------------

    def remove(self, job) -> bool:
        """Drop ``job`` from its bucket (e.g. cancelled while queued).

        Returns ``True`` when the job was buffered; a job already picked
        up (or never enqueued) is a ``False`` no-op.
        """
        bucket = self._buckets.get(job.client_id)
        if not bucket:
            return False
        try:
            bucket.remove(job)
        except ValueError:
            return False
        self._size -= 1
        self.task_done()
        return True

    def shed_lowest(self, below: int):
        """Evict and return the lowest-priority queued job, if any is
        strictly below ``below``; among equals the newest goes first.

        Returns ``None`` (and evicts nothing) when every queued job is
        at least as important as the incoming one.
        """
        victim_bucket = None
        victim_index = None
        victim = None
        for bucket in self._buckets.values():
            for i, job in enumerate(bucket):
                if job.priority >= below:
                    continue
                if (
                    victim is None
                    or job.priority < victim.priority
                    or (
                        job.priority == victim.priority
                        and job.submitted_at >= victim.submitted_at
                    )
                ):
                    victim, victim_bucket, victim_index = job, bucket, i
        if victim is None:
            return None
        del victim_bucket[victim_index]
        self._size -= 1
        self.task_done()
        return victim
