"""Distributed strategy exploration: TPE trials as placement-service jobs.

Strategy exploration (paper Sec. III-C) is embarrassingly parallel
inside each TPE round — the sampler suggests ``batch_size`` candidates
before any of them is evaluated — but the PR-3 evaluator only spread a
batch over a local process pool.  This module re-platforms the
evaluation onto :class:`repro.serve.service.PlacementService`, so every
trial inherits the service's whole stack for free: execution shards,
submit-time memoization and in-flight coalescing, the shared-design
cache, fair queueing, and crash quarantine (a trial that kills its
worker fails *that job*, not the exploration).

Three layers:

* :class:`DistributedEvaluator` — a drop-in ``list[params] ->
  list[loss]`` batch evaluator (the contract of
  :func:`repro.core.exploration.make_batch_evaluator`).  Each candidate
  becomes one job request (``route=True``, the candidate's
  :class:`~repro.core.strategy.StrategyParams` inside a
  :class:`repro.api.RunConfig`); the whole wave is submitted before any
  result is awaited, so trials saturate every shard.  Raw
  ``(total_overflow, wirelength)`` results come back in suggestion
  order and the loss is shaped *parent-side* with the same stateful
  wirelength reference the serial objective uses — which is why
  ``batch_size=1`` through this evaluator is bit-identical to the
  serial loop.  A failed job scores
  :data:`repro.core.exploration.FAILED_TRIAL_LOSS` (and leaves a
  ``failed`` journal record when a journal is attached), never aborting
  the exploration.
* :class:`ExplorationManager` — the ``/v1/explorations`` resource:
  creates explorations from :class:`repro.api.ExploreConfig` wire
  payloads, drives :func:`repro.api.run_exploration` on a worker thread
  with a :class:`DistributedEvaluator` over the owning service, streams
  every completed trial as a ``kind="trial"``
  :class:`repro.schema.JobEvent` through its own
  :class:`~repro.serve.events.EventLog` (long-polled by
  ``GET /v1/explorations/<id>/events``), and serves the final
  :class:`repro.schema.ExplorationReport` wire record.  When the
  service has an artifact cache, completed trials persist as
  :class:`repro.tpe.TransferPriors` and warm-start later explorations
  on similar designs.
* :class:`LocalServiceHost` — a context manager booting a service (and
  its event loop) on a helper thread so *synchronous* callers — the
  ``repro explore --jobs N`` CLI and the explore benchmark — can use a
  :class:`DistributedEvaluator` without owning an event loop.

Cancellation is cooperative and best-effort: ``DELETE`` sets a flag the
evaluator checks before every submit and between result waits; jobs
already on the queue run to completion (they are plain service jobs and
their results still land in the cache).
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from dataclasses import dataclass, field

from .. import obs
from .client import JobFailedError, ServiceClient
from .events import EventLog
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    RUNNING,
    QueueFullError,
    ServeError,
    ServiceClosedError,
)

#: Exploration lifecycle states (no ``queued`` — trials start queueing
#: the moment the exploration is created).
EXPLORATION_STATES = (RUNNING, DONE, FAILED, CANCELLED)

#: States an exploration never leaves.
EXPLORATION_TERMINAL = frozenset({DONE, FAILED, CANCELLED})

#: Request keys accepted by ``POST /v1/explorations``.
_EXPLORE_KEYS = frozenset({"config", "priority", "client_id"})

#: In-band marker for a trial whose job failed (local to this module;
#: the journal wire format matches ``make_batch_evaluator``'s).
_FAILED = object()


class UnknownExplorationError(ServeError, KeyError):
    """An exploration id with no entry in the manager."""

    def __init__(self, exploration_id: str, message: str | None = None) -> None:
        self.exploration_id = exploration_id
        self._message = message or f"unknown exploration {exploration_id!r}"
        super().__init__(self._message)

    def __str__(self) -> str:
        # KeyError.__str__ repr-quotes its argument; keep the message
        # plain so it survives the HTTP error round-trip unmangled.
        return self._message


class ExplorationStateError(ServeError):
    """An operation illegal in the exploration's current state."""


class ExplorationCancelledError(ServeError):
    """Raised inside the exploration thread after a cancel request."""


class DistributedEvaluator:
    """Evaluate TPE candidate batches as placement-service jobs.

    A drop-in batch evaluator for :func:`repro.tpe.minimize` /
    :func:`repro.api.run_exploration`: same call contract and the same
    ``last_details`` protocol as
    :func:`repro.core.exploration.make_batch_evaluator`, but each
    candidate runs as one job through a service client — in-process
    (:class:`~repro.serve.client.ServiceClient`, needs the service
    ``loop``) or remote (:class:`~repro.serve.client.HttpServiceClient`).

    Bit-identity with the serial loop holds because the evaluator is
    pure transport: the sampler's suggestion RNG is untouched, raw
    results are consumed in suggestion order, and the loss shaping
    (including the first-evaluation wirelength reference) runs on this
    side with the exact serial code path.

    Args:
        client: a :class:`~repro.serve.client.BaseClient`.
        config: the :class:`repro.api.ExploreConfig` being explored —
            provides the design, scale, and wirelength weight every
            trial shares.
        loop: the service's event loop, required when ``client`` is the
            async in-process client (calls hop over via
            ``run_coroutine_threadsafe``); ignored for sync clients.
        journal: optional :class:`repro.runtime.Journal`; raw results
            and failures are replayed/recorded exactly like the local
            evaluator's, so ``--resume`` works across both.
        timeout: per-trial wall-clock budget, seconds (becomes the job
            timeout; ``None`` = unlimited).
        priority: fair-queue priority of every submitted job.
        client_id: fair-queue bucket of every submitted job.
    """

    def __init__(self, client, config, *, loop=None, journal=None,
                 timeout: float | None = None, priority: int = 0,
                 client_id: str = "explore") -> None:
        from ..core.exploration import (
            SuiteDesignFactory,
            make_placement_objective,
        )

        self.client = client
        self.config = config
        self.loop = loop
        self.journal = journal
        self.timeout = timeout
        self.priority = int(priority)
        self.client_id = client_id
        self.last_details: list = []
        self.jobs_submitted = 0
        self._cancelled = threading.Event()
        # The parent-side twin of the serial objective: cache keys and
        # stateful loss shaping, never evaluate_raw (the service does).
        self._objective = make_placement_objective(
            SuiteDesignFactory(config.design, config.scale),
            wl_weight=config.wl_weight,
        )
        self._journaled: dict = {}
        if journal is not None:
            for record in journal.records():
                if "overflow" in record and "wirelength" in record:
                    self._journaled[record["key"]] = (
                        record["overflow"], record["wirelength"],
                    )
                elif "failed" in record:
                    self._journaled[record["key"]] = _FAILED

    # -- cancellation --------------------------------------------------

    def cancel(self) -> None:
        """Request a cooperative stop: the next submit/wait checkpoint
        raises :class:`ExplorationCancelledError`."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def _check_cancelled(self) -> None:
        if self._cancelled.is_set():
            raise ExplorationCancelledError("exploration cancelled")

    # -- transport -----------------------------------------------------

    def _call(self, method, *args, **kwargs):
        """Invoke a client method, bridging async clients onto ``loop``."""
        outcome = method(*args, **kwargs)
        if asyncio.iscoroutine(outcome):
            if self.loop is None:
                outcome.close()
                raise ValueError(
                    "an async client needs the service event loop (loop=)"
                )
            return asyncio.run_coroutine_threadsafe(outcome, self.loop).result()
        return outcome

    @staticmethod
    def _field(job, name: str):
        """One accessor over in-process ``Job``s and HTTP wire dicts."""
        if hasattr(job, name):
            return getattr(job, name)
        return job.get(name)

    def _submit(self, params: dict):
        """Submit one candidate, riding out backpressure.

        A full queue is expected at ``batch_size > capacity``: earlier
        jobs free their slots as they finish, so retrying after the
        server's hint always converges.
        """
        from ..api import RunConfig
        from ..core.strategy import StrategyParams

        wire = RunConfig(
            scale=self.config.scale,
            strategy=StrategyParams.from_dict(params),
        ).to_dict()
        while True:
            self._check_cancelled()
            try:
                job = self._call(
                    self.client.submit, self.config.design, config=wire,
                    route=True, timeout=self.timeout,
                    priority=self.priority, client_id=self.client_id,
                )
            except QueueFullError as exc:
                time.sleep(max(min(float(exc.retry_after or 0.5), 1.0), 0.05))
                continue
            self.jobs_submitted += 1
            return job

    def _wait_job(self, job_id: str):
        """Await one job's terminal state in cancel-checkable slices."""
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        while True:
            self._check_cancelled()
            wait = 2.0
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} outlived the {self.timeout:g}s "
                        f"trial budget"
                    )
                wait = min(wait, remaining)
            try:
                return self._call(self.client.wait, job_id, timeout=wait)
            except (TimeoutError, asyncio.TimeoutError):
                continue

    def _evaluate_remote(self, pending: list) -> list:
        """Submit a wave of candidates, then collect in suggestion order.

        Returns one outcome per candidate: ``(raw, cache_hit)`` on
        success, the exception on failure (never raises for a single
        bad trial — only for cancellation).
        """
        jobs = []
        for params in pending:
            try:
                jobs.append(self._submit(params))
            except ExplorationCancelledError:
                raise
            except Exception as exc:
                jobs.append(exc)
        outcomes = []
        for job in jobs:
            if isinstance(job, BaseException):
                outcomes.append(job)
                continue
            job_id = self._field(job, "id")
            try:
                final = self._wait_job(job_id)
            except ExplorationCancelledError:
                raise
            except Exception as exc:
                outcomes.append(exc)
                continue
            if self._field(final, "state") != DONE:
                outcomes.append(JobFailedError(final))
                continue
            result = self._field(final, "result") or {}
            route = result.get("route")
            if not route:
                outcomes.append(
                    ServeError(f"job {job_id} returned no route report")
                )
                continue
            raw = (float(route["total_overflow"]), float(route["wirelength"]))
            outcomes.append((raw, bool(self._field(final, "cache_hit"))))
        return outcomes

    # -- the evaluator contract ----------------------------------------

    def __call__(self, batch: list) -> list:
        from ..core.exploration import FAILED_TRIAL_LOSS

        self._check_cancelled()
        self.last_details = [None] * len(batch)
        details = self.last_details
        keys = [self._objective.cache_key(params) for params in batch]
        raws: list = [None] * len(batch)
        todo = []
        for i, key in enumerate(keys):
            if key is not None and key in self._journaled:
                raws[i] = self._journaled[key]
                details[i] = {"cached": True}
            else:
                todo.append(i)
        if todo:
            outcomes = self._evaluate_remote([batch[i] for i in todo])
            for i, outcome in zip(todo, outcomes):
                if isinstance(outcome, BaseException):
                    raws[i] = _FAILED
                    details[i] = {"cached": False, "error": str(outcome)}
                    if keys[i] is not None and self.journal is not None:
                        self.journal.append(
                            {"key": keys[i],
                             "failed": f"{type(outcome).__name__}: {outcome}"}
                        )
                        self._journaled[keys[i]] = _FAILED
                    continue
                raw, cache_hit = outcome
                raws[i] = raw
                details[i] = {"cached": bool(cache_hit)}
                if keys[i] is not None and self.journal is not None:
                    self.journal.append(
                        {"key": keys[i],
                         "overflow": raw[0], "wirelength": raw[1]}
                    )
                    self._journaled[keys[i]] = raw
        losses = []
        for i, raw in enumerate(raws):
            if raw is _FAILED:
                losses.append(FAILED_TRIAL_LOSS)
                details[i] = dict(details[i] or {}, failed=True)
            else:
                raw = (float(raw[0]), float(raw[1]))
                losses.append(self._objective.loss_from_raw(raw))
                details[i] = dict(
                    details[i] or {}, overflow=raw[0], wirelength=raw[1]
                )
        return losses


@dataclass
class Exploration:
    """One exploration and its lifecycle (the ``/v1/explorations`` row).

    Attributes:
        id: manager-unique identifier (``explore-N``).
        config: the validated :class:`repro.api.ExploreConfig`.
        state: current lifecycle state (:data:`EXPLORATION_STATES`).
        report: the :class:`repro.schema.ExplorationReport` wire dict
            once ``done``.
        error: terminal error message once ``failed``.
        trials: completed-trial count so far (grows live).
        created_at / finished_at: ``time.time()`` stamps.
    """

    id: str
    config: object
    state: str = RUNNING
    report: dict | None = None
    error: str | None = None
    trials: int = 0
    created_at: float = field(default_factory=time.time)
    finished_at: float | None = None

    @property
    def terminal(self) -> bool:
        return self.state in EXPLORATION_TERMINAL

    def to_wire(self) -> dict:
        """The JSON-safe status dict served over HTTP.

        The full report (trials included) stays behind
        ``GET /v1/explorations/<id>/report``; status carries only its
        headline numbers.
        """
        return {
            "id": self.id,
            "state": self.state,
            "config": self.config.to_dict(),
            "trials": self.trials,
            "error": self.error,
            "best_loss": None if self.report is None else self.report["best_loss"],
            "evaluations": (
                None if self.report is None else self.report["evaluations"]
            ),
            "created_at": self.created_at,
            "finished_at": self.finished_at,
        }


class ExplorationManager:
    """Owner of every exploration a service runs (``/v1/explorations``).

    Mirrors :class:`~repro.serve.sessions.SessionManager` structurally:
    loop-confined, one asyncio task per exploration, its own
    :class:`~repro.serve.events.EventLog` for long-polling, explicit
    drain.  The exploration itself runs on an executor thread (the TPE
    loop is synchronous); completed trials hop back to the loop via
    ``call_soon_threadsafe`` to publish ``kind="trial"`` events.
    """

    def __init__(self, service) -> None:
        self.service = service
        self._explorations: dict = {}
        self._ids = itertools.count(1)
        self._events = EventLog()
        self._evaluators: dict = {}
        self._tasks: set = set()
        self._done_events: dict = {}
        self._draining = False

    # -- lifecycle -----------------------------------------------------

    def create(self, request: dict) -> Exploration:
        """Validate ``request`` and start an exploration (non-blocking).

        The request is a JSON-safe dict: ``config`` (an
        :meth:`repro.api.ExploreConfig.to_dict` payload, defaults when
        omitted), plus scheduling hints ``priority`` and ``client_id``
        applied to every trial job.

        Raises:
            ServiceClosedError: after :meth:`drain` began.
            repro.schema.SchemaError / ValueError: invalid payloads.
        """
        from .. import api

        with obs.span("serve/request", op="explore"):
            if self._draining:
                raise ServiceClosedError(
                    "service is draining; not accepting explorations"
                )
            if not isinstance(request, dict):
                raise ValueError(
                    f"request must be a dict, got {type(request).__name__}"
                )
            unknown = set(request) - _EXPLORE_KEYS
            if unknown:
                raise ValueError(f"unknown request keys: {sorted(unknown)}")
            config = api.ExploreConfig.from_dict(request.get("config") or {})
            priority = request.get("priority", 0)
            if not isinstance(priority, int) or isinstance(priority, bool):
                raise ValueError("request 'priority' must be an int")
            client_id = request.get("client_id", "explore")
            if not isinstance(client_id, str) or not client_id:
                raise ValueError("request 'client_id' must be a non-empty string")
            exploration = Exploration(
                id=f"explore-{next(self._ids)}", config=config
            )
            self._explorations[exploration.id] = exploration
            self._done_events[exploration.id] = asyncio.Event()
            self._events.register(exploration.id)
            self._events.publish(exploration.id, "state", state=RUNNING)
            obs.counter("explore/created").inc()
            self._spawn(self._run(exploration, priority, client_id))
            return exploration

    def _spawn(self, coro) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, exploration: Exploration, priority: int,
                   client_id: str) -> None:
        from .. import api
        from ..tpe import TransferPriors

        loop = asyncio.get_running_loop()
        evaluator = DistributedEvaluator(
            ServiceClient(self.service), exploration.config, loop=loop,
            priority=priority, client_id=client_id,
        )
        self._evaluators[exploration.id] = evaluator
        # Priors live in the service's result cache, so explorations
        # warm-start from every exploration this server ever completed.
        priors = (
            TransferPriors(self.service._cache)
            if self.service._cache is not None else None
        )

        def on_trial(trial) -> None:
            loop.call_soon_threadsafe(self._record_trial, exploration, trial)

        def execute():
            return api.run_exploration(
                exploration.config, evaluator=evaluator,
                on_trial=on_trial, priors=priors,
            )

        try:
            outcome = await loop.run_in_executor(None, execute)
        except ExplorationCancelledError:
            self._finish(exploration, CANCELLED)
        except Exception as exc:
            if evaluator.cancelled:
                # A drain/cancel can surface as a submit-time error
                # before the next cooperative checkpoint fires.
                self._finish(exploration, CANCELLED)
            else:
                self._finish(
                    exploration, FAILED, error=f"{type(exc).__name__}: {exc}"
                )
        else:
            exploration.report = outcome.wire.to_dict()
            self._finish(exploration, DONE)
        finally:
            self._evaluators.pop(exploration.id, None)

    def _record_trial(self, exploration: Exploration, trial) -> None:
        if exploration.terminal:
            return
        exploration.trials += 1
        self._events.publish(exploration.id, "trial", trial=trial)
        obs.counter("explore/trials").inc()

    def _finish(self, exploration: Exploration, state: str,
                error: str | None = None) -> None:
        exploration.state = state
        exploration.error = error
        exploration.finished_at = time.time()
        self._events.publish(exploration.id, "state", state=state)
        self._done_events[exploration.id].set()
        obs.counter(f"explore/{state}").inc()

    # -- queries -------------------------------------------------------

    def get(self, exploration_id: str) -> Exploration:
        """The exploration for ``exploration_id`` (raises
        :class:`UnknownExplorationError`)."""
        try:
            return self._explorations[exploration_id]
        except KeyError:
            raise UnknownExplorationError(exploration_id) from None

    def explorations(self, state: str | None = None) -> list:
        """All explorations in creation order, optionally by state."""
        items = list(self._explorations.values())
        if state is not None:
            items = [e for e in items if e.state == state]
        return items

    def events(self, exploration_id: str, after: int = -1) -> list:
        """Events with ``seq > after`` (non-blocking)."""
        self.get(exploration_id)  # raises UnknownExplorationError
        return self._events.events(exploration_id, after)

    async def wait_events(self, exploration_id: str, after: int = -1,
                          timeout: float | None = 30.0) -> tuple:
        """Long-poll for events past ``after``.

        Returns ``(events, stream_done)`` exactly like
        :meth:`repro.serve.service.PlacementService.wait_events`.
        """
        exploration = self.get(exploration_id)
        fresh = self._events.events(exploration_id, after)
        if not fresh and not exploration.terminal:
            fresh = await self._events.wait(exploration_id, after, timeout)
        return fresh, exploration.terminal

    def report(self, exploration_id: str) -> dict:
        """The finished exploration's wire report.

        Raises:
            ExplorationStateError: not ``done`` yet (HTTP 409) — failed
                and cancelled explorations have no report either.
        """
        exploration = self.get(exploration_id)
        if exploration.state != DONE:
            raise ExplorationStateError(
                f"exploration {exploration_id} is {exploration.state}; "
                f"the report is available once done"
            )
        return exploration.report

    def cancel(self, exploration_id: str) -> Exploration:
        """Request a cooperative cancel (jobs already queued finish).

        Raises:
            UnknownExplorationError: no such exploration.
            ExplorationStateError: already terminal.
        """
        exploration = self.get(exploration_id)
        if exploration.terminal:
            raise ExplorationStateError(
                f"exploration {exploration_id} is already {exploration.state}"
            )
        evaluator = self._evaluators.get(exploration_id)
        if evaluator is not None:
            evaluator.cancel()
        return exploration

    async def wait(self, exploration_id: str,
                   timeout: float | None = None) -> Exploration:
        """Await an exploration's terminal state and return it."""
        exploration = self.get(exploration_id)
        await asyncio.wait_for(
            self._done_events[exploration_id].wait(), timeout
        )
        return exploration

    def counts(self) -> dict:
        """``state -> count`` over every state (zeros included)."""
        counts = dict.fromkeys(EXPLORATION_STATES, 0)
        for exploration in self._explorations.values():
            counts[exploration.state] += 1
        return counts

    async def drain(self) -> None:
        """Stop intake, cancel live explorations, await their tasks."""
        self._draining = True
        for evaluator in list(self._evaluators.values()):
            evaluator.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)


class LocalServiceHost:
    """A placement service on a private loop, for synchronous callers.

    ``repro explore --jobs N`` and the explore benchmark want the
    distributed evaluator without running a server or owning an event
    loop; this context manager boots the loop on a daemon thread,
    starts the service on it, and tears both down on exit::

        with LocalServiceHost(ServiceConfig(shards=4)) as host:
            evaluator = host.evaluator(config, journal=journal)
            report = api.explore(config=config, evaluator=evaluator)

    Attributes (inside the ``with`` block):
        service: the started :class:`~repro.serve.service.PlacementService`.
        client: an in-process :class:`~repro.serve.client.ServiceClient`.
        loop: the hosted event loop (what :class:`DistributedEvaluator`
            bridges its async calls onto).
    """

    def __init__(self, config=None, runner=None) -> None:
        self.config = config
        self.runner = runner
        self.service = None
        self.client = None
        self.loop = None
        self._thread = None

    def __enter__(self) -> "LocalServiceHost":
        from .service import PlacementService

        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, name="repro-explore-host", daemon=True
        )
        self._thread.start()

        async def boot():
            service = PlacementService(self.config, runner=self.runner)
            await service.start()
            return service

        self.service = asyncio.run_coroutine_threadsafe(
            boot(), self.loop
        ).result()
        self.client = ServiceClient(self.service)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            asyncio.run_coroutine_threadsafe(
                self.service.stop(), self.loop
            ).result(timeout=60.0)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=10.0)
            self.loop.close()
        return False

    def evaluator(self, config, **kwargs) -> DistributedEvaluator:
        """A :class:`DistributedEvaluator` over the hosted service."""
        return DistributedEvaluator(
            self.client, config, loop=self.loop, **kwargs
        )


__all__ = [
    "EXPLORATION_STATES",
    "EXPLORATION_TERMINAL",
    "DistributedEvaluator",
    "Exploration",
    "ExplorationCancelledError",
    "ExplorationManager",
    "ExplorationStateError",
    "LocalServiceHost",
    "UnknownExplorationError",
]
