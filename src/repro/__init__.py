"""PUFFER: a routability-driven placement framework via cell padding with
multiple features and strategy exploration (DAC 2023 reproduction).

Public entry points:

* :class:`repro.core.PufferPlacer` — the full PUFFER flow.
* :class:`repro.core.StrategyParams` / :func:`repro.core.exploration.strategy_exploration`
  — strategy parameters and their Bayesian exploration.
* :mod:`repro.benchgen` — the synthetic Table-I benchmark suite.
* :mod:`repro.evalkit` — Table/figure reproduction harness.
"""

from .core import PufferPlacer, PufferResult, StrategyParams

__version__ = "1.0.0"

__all__ = ["PufferPlacer", "PufferResult", "StrategyParams", "__version__"]
