"""Wire-safe serialization of configuration dataclasses.

The serving layer (:mod:`repro.serve`) and the artifact cache both need
configurations that survive a process boundary: a ``RunConfig`` posted
as JSON to the job server must reconstruct bit-identically on the other
side, and its :func:`repro.runtime.cache.stable_hash` key must come out
the same in every process.  This module provides the two generic halves
of that contract:

* :func:`dataclass_to_dict` — a JSON-safe ``dict`` of a configuration
  dataclass, stamped with :data:`SCHEMA_VERSION` so readers can detect
  incompatible producers.  Nested dataclasses serialize through their
  own ``to_dict`` when they define one.
* :func:`dataclass_from_dict` — the inverse: validates the schema
  version, **rejects unknown keys** (typos fail at the boundary, not
  mid-run), rebuilds nested dataclasses, and lets the target class's
  ``__post_init__`` do semantic validation.

``to_dict()``/``from_dict()`` pairs on :class:`repro.api.RunConfig`,
:class:`repro.placer.PlacementParams`,
:class:`repro.router.RouterParams`, and
:class:`repro.core.StrategyParams` are thin wrappers over these.
Everything emitted is JSON-native (str/int/float/bool/None/dict/list),
so ``json.loads(json.dumps(cfg.to_dict()))`` is lossless — Python floats
round-trip exactly through JSON's repr-based encoding.
"""

from __future__ import annotations

import dataclasses

#: Version stamped into every ``to_dict()`` payload.  Bump on any
#: incompatible field change; ``from_dict`` rejects other versions.
SCHEMA_VERSION = 1


class SchemaError(ValueError):
    """A wire payload that cannot become a valid configuration."""


def _encode(value):
    """Reduce ``value`` to JSON-native structure."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        to_dict = getattr(value, "to_dict", None)
        return to_dict() if to_dict is not None else dataclass_to_dict(value)
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return _encode(value.item())
    raise SchemaError(f"cannot serialize {type(value).__name__} for the wire")


def dataclass_to_dict(obj) -> dict:
    """A JSON-safe dict of dataclass ``obj``, stamped with the version.

    Field order follows the dataclass definition, with
    ``schema_version`` first.  Nested dataclasses carry their own
    version stamp, so each level validates independently on read.
    """
    out = {"schema_version": SCHEMA_VERSION}
    for f in dataclasses.fields(obj):
        out[f.name] = _encode(getattr(obj, f.name))
    return out


def dataclass_from_dict(cls, data, nested: dict | None = None):
    """Rebuild ``cls`` from a :func:`dataclass_to_dict` payload.

    Args:
        cls: target dataclass type.
        data: the wire dict.  ``schema_version`` is optional (hand-built
            dicts omit it) but must equal :data:`SCHEMA_VERSION` when
            present.  Missing fields keep their dataclass defaults.
        nested: ``field name -> callable(dict) -> value`` for fields
            that are themselves dataclasses; skipped when the field's
            payload is ``None``.

    Raises:
        SchemaError: on a non-dict payload, an unsupported
            ``schema_version``, or any unknown key.
    """
    if not isinstance(data, dict):
        raise SchemaError(
            f"{cls.__name__} payload must be a dict, got {type(data).__name__}"
        )
    data = dict(data)
    version = data.pop("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"{cls.__name__} schema_version {version!r} is not supported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SchemaError(f"unknown {cls.__name__} keys: {unknown}")
    kwargs = {}
    for name, value in data.items():
        build = (nested or {}).get(name)
        kwargs[name] = build(value) if build is not None and value is not None else value
    return cls(**kwargs)


#: Event kinds a job stream may carry.  ``state`` marks a lifecycle
#: transition (queued/running/done/failed/cancelled); ``progress`` wraps
#: a :class:`JobProgress` sample from inside the running placement.
EVENT_KINDS = ("state", "progress")

#: Progress stages, mapping 1:1 onto the ``repro.obs`` span names the
#: placement flow already emits.
PROGRESS_STAGES = {
    "gp/iteration": "gp",
    "puffer/padding_round": "padding",
    "route/rrr_round": "route",
}


@dataclasses.dataclass(frozen=True)
class JobProgress:
    """One progress sample from inside a running placement.

    ``stage`` names the loop that produced the sample (``gp``,
    ``padding``, ``route``); ``step`` is that loop's counter (gp
    iteration, padding round, RRR round); ``metrics`` carries whatever
    scalars the span recorded (``hpwl``, ``overflow``, ...).
    """

    stage: str
    step: int
    metrics: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        if self.stage not in PROGRESS_STAGES.values():
            raise SchemaError(
                f"unknown progress stage {self.stage!r}; "
                f"expected one of {sorted(set(PROGRESS_STAGES.values()))}"
            )
        if not isinstance(self.step, int) or isinstance(self.step, bool) or self.step < 0:
            raise SchemaError(f"progress step must be a non-negative int, got {self.step!r}")

    def to_dict(self) -> dict:
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data) -> "JobProgress":
        return dataclass_from_dict(cls, data)


@dataclasses.dataclass(frozen=True)
class JobEvent:
    """One entry in a job's ordered event stream.

    Events are totally ordered per job by ``seq`` (0-based, no gaps as
    published; clients resume with ``?after=<last seen seq>``).  A
    ``state`` event carries the new lifecycle state in ``state``; a
    ``progress`` event carries a :class:`JobProgress` in ``progress``.
    """

    seq: int
    kind: str
    job_id: str
    ts: float
    state: str | None = None
    progress: JobProgress | None = None

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise SchemaError(
                f"unknown event kind {self.kind!r}; expected one of {list(EVENT_KINDS)}"
            )
        if not isinstance(self.seq, int) or isinstance(self.seq, bool) or self.seq < 0:
            raise SchemaError(f"event seq must be a non-negative int, got {self.seq!r}")
        if self.kind == "state" and not self.state:
            raise SchemaError("state events must carry a state")
        if self.kind == "progress" and self.progress is None:
            raise SchemaError("progress events must carry a progress payload")

    def to_dict(self) -> dict:
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data) -> "JobEvent":
        return dataclass_from_dict(
            cls, data, nested={"progress": JobProgress.from_dict}
        )


__all__ = [
    "EVENT_KINDS",
    "PROGRESS_STAGES",
    "SCHEMA_VERSION",
    "JobEvent",
    "JobProgress",
    "SchemaError",
    "dataclass_from_dict",
    "dataclass_to_dict",
]
