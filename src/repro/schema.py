"""Wire-safe serialization of configuration dataclasses.

The serving layer (:mod:`repro.serve`) and the artifact cache both need
configurations that survive a process boundary: a ``RunConfig`` posted
as JSON to the job server must reconstruct bit-identically on the other
side, and its :func:`repro.runtime.cache.stable_hash` key must come out
the same in every process.  This module provides the two generic halves
of that contract:

* :func:`dataclass_to_dict` — a JSON-safe ``dict`` of a configuration
  dataclass, stamped with :data:`SCHEMA_VERSION` so readers can detect
  incompatible producers.  Nested dataclasses serialize through their
  own ``to_dict`` when they define one.
* :func:`dataclass_from_dict` — the inverse: validates the schema
  version, **rejects unknown keys** (typos fail at the boundary, not
  mid-run), rebuilds nested dataclasses, and lets the target class's
  ``__post_init__`` do semantic validation.

``to_dict()``/``from_dict()`` pairs on :class:`repro.api.RunConfig`,
:class:`repro.placer.PlacementParams`,
:class:`repro.router.RouterParams`, and
:class:`repro.core.StrategyParams` are thin wrappers over these.
Everything emitted is JSON-native (str/int/float/bool/None/dict/list),
so ``json.loads(json.dumps(cfg.to_dict()))`` is lossless — Python floats
round-trip exactly through JSON's repr-based encoding.
"""

from __future__ import annotations

import dataclasses

#: Version stamped into every ``to_dict()`` payload.  Bump on any
#: incompatible field change; ``from_dict`` rejects other versions.
SCHEMA_VERSION = 1


class SchemaError(ValueError):
    """A wire payload that cannot become a valid configuration."""


def _encode(value):
    """Reduce ``value`` to JSON-native structure."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        to_dict = getattr(value, "to_dict", None)
        return to_dict() if to_dict is not None else dataclass_to_dict(value)
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return _encode(value.item())
    raise SchemaError(f"cannot serialize {type(value).__name__} for the wire")


def dataclass_to_dict(obj) -> dict:
    """A JSON-safe dict of dataclass ``obj``, stamped with the version.

    Field order follows the dataclass definition, with
    ``schema_version`` first.  Nested dataclasses carry their own
    version stamp, so each level validates independently on read.
    """
    out = {"schema_version": SCHEMA_VERSION}
    for f in dataclasses.fields(obj):
        out[f.name] = _encode(getattr(obj, f.name))
    return out


def dataclass_from_dict(cls, data, nested: dict | None = None):
    """Rebuild ``cls`` from a :func:`dataclass_to_dict` payload.

    Args:
        cls: target dataclass type.
        data: the wire dict.  ``schema_version`` is optional (hand-built
            dicts omit it) but must equal :data:`SCHEMA_VERSION` when
            present.  Missing fields keep their dataclass defaults.
        nested: ``field name -> callable(dict) -> value`` for fields
            that are themselves dataclasses; skipped when the field's
            payload is ``None``.

    Raises:
        SchemaError: on a non-dict payload, an unsupported
            ``schema_version``, or any unknown key.
    """
    if not isinstance(data, dict):
        raise SchemaError(
            f"{cls.__name__} payload must be a dict, got {type(data).__name__}"
        )
    data = dict(data)
    version = data.pop("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"{cls.__name__} schema_version {version!r} is not supported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SchemaError(f"unknown {cls.__name__} keys: {unknown}")
    kwargs = {}
    for name, value in data.items():
        build = (nested or {}).get(name)
        kwargs[name] = build(value) if build is not None and value is not None else value
    return cls(**kwargs)


#: Event kinds a job stream may carry.  ``state`` marks a lifecycle
#: transition (queued/running/done/failed/cancelled); ``progress`` wraps
#: a :class:`JobProgress` sample from inside the running placement;
#: ``trial`` wraps a completed exploration :class:`Trial`.
EVENT_KINDS = ("state", "progress", "trial")

#: Progress stages, mapping 1:1 onto the ``repro.obs`` span names the
#: placement flow already emits.
PROGRESS_STAGES = {
    "gp/iteration": "gp",
    "puffer/padding_round": "padding",
    "route/rrr_round": "route",
}


@dataclasses.dataclass(frozen=True)
class JobProgress:
    """One progress sample from inside a running placement.

    ``stage`` names the loop that produced the sample (``gp``,
    ``padding``, ``route``); ``step`` is that loop's counter (gp
    iteration, padding round, RRR round); ``metrics`` carries whatever
    scalars the span recorded (``hpwl``, ``overflow``, ...).
    """

    stage: str
    step: int
    metrics: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        if self.stage not in PROGRESS_STAGES.values():
            raise SchemaError(
                f"unknown progress stage {self.stage!r}; "
                f"expected one of {sorted(set(PROGRESS_STAGES.values()))}"
            )
        if not isinstance(self.step, int) or isinstance(self.step, bool) or self.step < 0:
            raise SchemaError(f"progress step must be a non-negative int, got {self.step!r}")

    def to_dict(self) -> dict:
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data) -> "JobProgress":
        return dataclass_from_dict(cls, data)


def _require_number(value, what: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SchemaError(f"{what} must be a number, got {value!r}")


@dataclasses.dataclass(frozen=True)
class Trial:
    """One completed exploration trial, on the wire.

    Distinct from the in-memory :class:`repro.tpe.Trial` (which holds
    live objects): this is the JSON-safe record streamed as a ``trial``
    event from ``GET /v1/explorations/<id>/events`` and embedded in
    :class:`ExplorationReport`.  ``stage`` names the exploration stage
    that evaluated it (``global`` or a parameter-group name); ``params``
    is the raw TPE suggestion (space-parameter dict); ``overflow`` /
    ``wirelength`` are the router measurements when available (a failed
    trial has neither, only its penalty ``loss``); ``cached`` marks a
    submit-time memoization hit on the job server.
    """

    index: int
    stage: str
    params: dict
    loss: float
    overflow: float | None = None
    wirelength: float | None = None
    cached: bool = False

    def __post_init__(self):
        if not isinstance(self.index, int) or isinstance(self.index, bool) or self.index < 0:
            raise SchemaError(f"trial index must be a non-negative int, got {self.index!r}")
        if not isinstance(self.stage, str) or not self.stage:
            raise SchemaError(f"trial stage must be a non-empty string, got {self.stage!r}")
        if not isinstance(self.params, dict):
            raise SchemaError(f"trial params must be a dict, got {type(self.params).__name__}")
        _require_number(self.loss, "trial loss")
        for name in ("overflow", "wirelength"):
            value = getattr(self, name)
            if value is not None:
                _require_number(value, f"trial {name}")
        if not isinstance(self.cached, bool):
            raise SchemaError(f"trial cached flag must be a bool, got {self.cached!r}")

    def to_dict(self) -> dict:
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data) -> "Trial":
        return dataclass_from_dict(cls, data)


@dataclasses.dataclass(frozen=True)
class ExplorationReport:
    """The final result of one strategy exploration, on the wire.

    The in-memory counterpart (:class:`repro.core.exploration`'s report)
    holds live ``StrategyParams``/``Space`` objects; this one is what
    ``GET /v1/explorations/<id>/report`` returns and what
    ``api.run_exploration`` produces alongside it.  ``params`` is the
    final chosen strategy as a ``StrategyParams.to_dict()`` payload;
    ``best_params`` the best raw TPE suggestion; ``history`` a list of
    ``[stage, loss]`` pairs (one per exploration stage, in order).
    """

    design: str
    params: dict
    best_loss: float
    best_params: dict
    evaluations: int
    group_rounds: int
    history: list = dataclasses.field(default_factory=list)
    trials: list = dataclasses.field(default_factory=list)

    def __post_init__(self):
        if not isinstance(self.design, str) or not self.design:
            raise SchemaError(
                f"exploration design must be a non-empty string, got {self.design!r}"
            )
        for name in ("params", "best_params"):
            if not isinstance(getattr(self, name), dict):
                raise SchemaError(
                    f"exploration {name} must be a dict, "
                    f"got {type(getattr(self, name)).__name__}"
                )
        _require_number(self.best_loss, "exploration best_loss")
        for name in ("evaluations", "group_rounds"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise SchemaError(
                    f"exploration {name} must be a non-negative int, got {value!r}"
                )
        if not isinstance(self.history, (list, tuple)):
            raise SchemaError("exploration history must be a list of [stage, loss] pairs")
        history = []
        for entry in self.history:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise SchemaError(
                    f"exploration history entries must be [stage, loss] pairs, got {entry!r}"
                )
            history.append(list(entry))
        # Normalize to lists so a JSON round trip compares bit-identical.
        object.__setattr__(self, "history", history)
        trials = list(self.trials) if isinstance(self.trials, (list, tuple)) else self.trials
        if not isinstance(trials, list) or any(not isinstance(t, Trial) for t in trials):
            raise SchemaError("exploration trials must be a list of Trial records")
        object.__setattr__(self, "trials", trials)

    def to_dict(self) -> dict:
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data) -> "ExplorationReport":
        return dataclass_from_dict(
            cls, data,
            nested={"trials": lambda items: [Trial.from_dict(t) for t in items]},
        )


@dataclasses.dataclass(frozen=True)
class JobEvent:
    """One entry in a job's ordered event stream.

    Events are totally ordered per job by ``seq`` (0-based, no gaps as
    published; clients resume with ``?after=<last seen seq>``).  A
    ``state`` event carries the new lifecycle state in ``state``; a
    ``progress`` event carries a :class:`JobProgress` in ``progress``; a
    ``trial`` event (exploration streams only) carries a :class:`Trial`
    in ``trial``.
    """

    seq: int
    kind: str
    job_id: str
    ts: float
    state: str | None = None
    progress: JobProgress | None = None
    trial: Trial | None = None

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise SchemaError(
                f"unknown event kind {self.kind!r}; expected one of {list(EVENT_KINDS)}"
            )
        if not isinstance(self.seq, int) or isinstance(self.seq, bool) or self.seq < 0:
            raise SchemaError(f"event seq must be a non-negative int, got {self.seq!r}")
        if self.kind == "state" and not self.state:
            raise SchemaError("state events must carry a state")
        if self.kind == "progress" and self.progress is None:
            raise SchemaError("progress events must carry a progress payload")
        if self.kind == "trial" and self.trial is None:
            raise SchemaError("trial events must carry a trial payload")

    def to_dict(self) -> dict:
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data) -> "JobEvent":
        return dataclass_from_dict(
            cls, data,
            nested={"progress": JobProgress.from_dict, "trial": Trial.from_dict},
        )


__all__ = [
    "EVENT_KINDS",
    "PROGRESS_STAGES",
    "SCHEMA_VERSION",
    "ExplorationReport",
    "JobEvent",
    "JobProgress",
    "SchemaError",
    "Trial",
    "dataclass_from_dict",
    "dataclass_to_dict",
]
