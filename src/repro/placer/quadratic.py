"""Quadratic (conjugate-gradient) initial placement.

The classic alternative to the fixed-point star-model seed: minimize the
quadratic wirelength ``sum_e w_e (x_i - x_j)^2`` under fixed-cell
anchors, solved per axis with scipy's conjugate gradient on the sparse
connectivity Laplacian.  Nets are modelled with the hybrid clique/star
decomposition: small nets contribute cliques with weight ``2/(k-1)``,
large nets a star through an auxiliary point that is eliminated by
connecting members to the net centroid iteratively (one outer refinement
pass keeps the system symmetric positive definite without auxiliary
variables).

Quadratic seeds matter on designs with many fixed anchors (IO-heavy or
macro-heavy floorplans) where the damped star iteration converges
slowly; the engine exposes both via ``PlacementParams``-independent
function selection.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix
from scipy.sparse.linalg import cg

from ..netlist.design import Design
from .initial import clamp_to_die
from .params import PlacementParams

#: Nets up to this degree contribute full cliques.
CLIQUE_LIMIT = 4


def initial_place_quadratic(
    design: Design,
    params: PlacementParams | None = None,
    star_passes: int = 2,
    cg_tol: float = 1e-6,
    max_cg_iters: int = 300,
) -> None:
    """Overwrite movable positions with the quadratic-programming seed.

    Args:
        design: the design to seed (positions mutate in place).
        params: placement parameters (jitter/seed).
        star_passes: centroid-refresh passes for large (star) nets.
        cg_tol: conjugate-gradient relative tolerance.
        max_cg_iters: conjugate-gradient iteration cap per axis.
    """
    params = params or PlacementParams()
    movable_idx = np.flatnonzero(design.movable)
    if len(movable_idx) == 0:
        return
    # Deterministic start: seed from the die center regardless of any
    # positions left over from earlier runs.
    center = design.die.center
    design.x[movable_idx] = center.x
    design.y[movable_idx] = center.y
    position = {int(c): i for i, c in enumerate(movable_idx)}
    n = len(movable_idx)

    # Clique edges between movable cells, and anchor terms to fixed pins.
    rows, cols, weights = [], [], []
    diag = np.zeros(n)
    rhs_x = np.zeros(n)
    rhs_y = np.zeros(n)
    px, py = design.pin_positions()

    star_nets = []
    for net in range(design.num_nets):
        pins = design.pins_of_net(net)
        k = len(pins)
        if k < 2:
            continue
        if k > CLIQUE_LIMIT:
            star_nets.append(pins)
            continue
        w = 2.0 / (k - 1)
        for a in range(k):
            pa = pins[a]
            ca = int(design.pin_cell[pa])
            for b in range(a + 1, k):
                pb = pins[b]
                cb = int(design.pin_cell[pb])
                _add_edge(
                    design, position, rows, cols, weights, diag,
                    rhs_x, rhs_y, px, py, pa, ca, pb, cb, w,
                )

    x0 = design.x[movable_idx].copy()
    y0 = design.y[movable_idx].copy()
    x_sol, y_sol = x0, y0
    for _ in range(max(star_passes, 1)):
        srows = list(rows)
        scols = list(cols)
        sweights = list(weights)
        sdiag = diag.copy()
        srhs_x = rhs_x.copy()
        srhs_y = rhs_y.copy()
        _add_star_terms(
            design, position, star_nets, x_sol, y_sol, movable_idx,
            srows, scols, sweights, sdiag, srhs_x, srhs_y, px, py,
        )
        laplacian = _assemble(n, srows, scols, sweights, sdiag)
        x_sol = _solve(laplacian, srhs_x, x0, cg_tol, max_cg_iters)
        y_sol = _solve(laplacian, srhs_y, y0, cg_tol, max_cg_iters)

    design.x[movable_idx] = x_sol
    design.y[movable_idx] = y_sol

    rng = np.random.default_rng(params.seed)
    jitter = params.initial_noise * design.die.width / 64.0
    design.x[movable_idx] += rng.uniform(-1, 1, n) * jitter
    design.y[movable_idx] += rng.uniform(-1, 1, n) * jitter
    clamp_to_die(design)


def _add_edge(
    design, position, rows, cols, weights, diag, rhs_x, rhs_y, px, py,
    pa, ca, pb, cb, w,
) -> None:
    """One quadratic spring between two pins (cell or fixed anchor)."""
    a_mov = design.movable[ca]
    b_mov = design.movable[cb]
    if a_mov and b_mov:
        ia, ib = position[ca], position[cb]
        if ia == ib:
            return
        rows.append(ia)
        cols.append(ib)
        weights.append(-w)
        rows.append(ib)
        cols.append(ia)
        weights.append(-w)
        diag[ia] += w
        diag[ib] += w
        # Pin offsets shift the equilibrium: spring rest between pin
        # positions means targets differ by the offset difference.
        rhs_x[ia] += w * (design.pin_dx[pb] - design.pin_dx[pa])
        rhs_x[ib] += w * (design.pin_dx[pa] - design.pin_dx[pb])
        rhs_y[ia] += w * (design.pin_dy[pb] - design.pin_dy[pa])
        rhs_y[ib] += w * (design.pin_dy[pa] - design.pin_dy[pb])
    elif a_mov or b_mov:
        mov_cell, mov_pin = (ca, pa) if a_mov else (cb, pb)
        fix_pin = pb if a_mov else pa
        i = position[mov_cell]
        diag[i] += w
        rhs_x[i] += w * (px[fix_pin] - design.pin_dx[mov_pin])
        rhs_y[i] += w * (py[fix_pin] - design.pin_dy[mov_pin])


def _add_star_terms(
    design, position, star_nets, x_sol, y_sol, movable_idx,
    rows, cols, weights, diag, rhs_x, rhs_y, px, py,
) -> None:
    """Large nets pull their members toward the current net centroid."""
    x_full = design.x.copy()
    y_full = design.y.copy()
    x_full[movable_idx] = x_sol
    y_full[movable_idx] = y_sol
    for pins in star_nets:
        k = len(pins)
        w = 2.0 / (k - 1) / 2.0
        cx = float(np.mean(x_full[design.pin_cell[pins]]))
        cy = float(np.mean(y_full[design.pin_cell[pins]]))
        for p in pins:
            cell = int(design.pin_cell[p])
            if not design.movable[cell]:
                continue
            i = position[cell]
            diag[i] += w
            rhs_x[i] += w * (cx - design.pin_dx[p])
            rhs_y[i] += w * (cy - design.pin_dy[p])


def _assemble(n, rows, cols, weights, diag) -> csr_matrix:
    rows = list(rows) + list(range(n))
    cols = list(cols) + list(range(n))
    # Tikhonov epsilon keeps cells with no anchors well-posed.
    weights = list(weights) + list(diag + 1e-9)
    return coo_matrix((weights, (rows, cols)), shape=(n, n)).tocsr()


def _solve(laplacian, rhs, x0, tol, maxiter) -> np.ndarray:
    solution, info = cg(laplacian, rhs, x0=x0, rtol=tol, maxiter=maxiter)
    if info < 0:
        raise RuntimeError(f"conjugate gradient failed (info={info})")
    return solution
