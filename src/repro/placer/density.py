"""Electrostatic density system of ePlace (paper Eqs. 3-6).

The placement region is divided into an ``M x M`` bin grid.  Movable-cell
area is accumulated into a charge-density map; a spectral Poisson solver
(DCT/DST based, as in ePlace) yields the electric potential ``psi`` and
field ``(Ex, Ey)``, from which the density penalty ``D = sum_i q_i psi_i``
and its gradient ``dD/dx_i = -q_i Ex_i`` follow.

Cell sizes are decoupled from the design: :meth:`ElectrostaticDensity.set_sizes`
accepts *effective* (padded) extents, which is how PUFFER's cell padding
feeds back into the electrostatic system.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.fft import dctn, idctn

from .. import kernels, obs
from ..netlist.design import Design
from .params import PlacementParams

_SQRT2 = math.sqrt(2.0)


def auto_grid_dim(num_movable: int, lo: int = 16, hi: int = 256) -> int:
    """Power-of-two grid dimension, roughly ``sqrt(num_movable)`` bins."""
    target = max(int(math.sqrt(max(num_movable, 1))), 1)
    dim = 1 << max(int(round(math.log2(target))), 0)
    return int(min(max(dim, lo), hi))


class ElectrostaticDensity:
    """Charge-density map, spectral Poisson solver, and overflow metric."""

    def __init__(self, design: Design, params: PlacementParams | None = None) -> None:
        params = params or PlacementParams()
        self._design = design
        self.dim = params.grid_dim or auto_grid_dim(design.num_movable)
        die = design.die
        self.bin_w = die.width / self.dim
        self.bin_h = die.height / self.dim
        self.bin_area = self.bin_w * self.bin_h
        self.target_density = params.target_density
        self._movable = design.movable
        self._mov_idx = np.flatnonzero(design.movable)
        self._fixed_map = self._rasterize_fixed()
        self._free_area = np.maximum(self.bin_area - self._fixed_map, 0.0)
        self._omega = np.pi * np.arange(self.dim) / self.dim
        self.set_sizes(design.w, design.h)

    # ------------------------------------------------------------------
    # Size management (padding support)
    # ------------------------------------------------------------------

    def set_sizes(self, w: np.ndarray, h: np.ndarray) -> None:
        """Set effective cell extents (padded sizes) for density purposes.

        Sizes below ``sqrt(2) * bin`` are smoothed up with an
        area-preserving scale factor, as in ePlace, so the density map
        stays differentiable as cells cross bin boundaries.
        """
        if len(w) != self._design.num_cells or len(h) != self._design.num_cells:
            raise ValueError("size array length mismatch")
        self._w_eff = np.asarray(w, dtype=np.float64)
        self._h_eff = np.asarray(h, dtype=np.float64)
        w_m = self._w_eff[self._mov_idx]
        h_m = self._h_eff[self._mov_idx]
        self._w_s = np.maximum(w_m, _SQRT2 * self.bin_w)
        self._h_s = np.maximum(h_m, _SQRT2 * self.bin_h)
        self._scale = (w_m / self._w_s) * (h_m / self._h_s)
        self._charge = w_m * h_m
        self._kx = int(math.ceil(self._w_s.max() / self.bin_w)) + 1 if len(w_m) else 1
        self._ky = int(math.ceil(self._h_s.max() / self.bin_h)) + 1 if len(h_m) else 1

    @property
    def charge(self) -> np.ndarray:
        """Per-movable-cell charge (effective area), in movable order."""
        return self._charge

    @property
    def movable_indices(self) -> np.ndarray:
        """Cell indices of movable cells, in charge order."""
        return self._mov_idx

    @property
    def fixed_map(self) -> np.ndarray:
        """Fixed-object area per bin (clipped at the bin area)."""
        return self._fixed_map

    # ------------------------------------------------------------------
    # Density accumulation
    # ------------------------------------------------------------------

    def movable_density(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Smoothed movable-area map for cell centers ``x, y``."""
        die = self._design.die
        dim = self.dim
        if len(self._mov_idx) == 0:
            return np.zeros((dim, dim))
        with obs.span("density/movable", cells=len(self._mov_idx)) as span:
            cx = np.clip(x[self._mov_idx], die.xlo, die.xhi)
            cy = np.clip(y[self._mov_idx], die.ylo, die.yhi)
            xlo = np.clip(cx - self._w_s / 2, die.xlo, die.xhi) - die.xlo
            xhi = np.clip(cx + self._w_s / 2, die.xlo, die.xhi) - die.xlo
            ylo = np.clip(cy - self._h_s / 2, die.ylo, die.yhi) - die.ylo
            yhi = np.clip(cy + self._h_s / 2, die.ylo, die.yhi) - die.ylo
            ix0 = np.floor(xlo / self.bin_w).astype(np.int64)
            iy0 = np.floor(ylo / self.bin_h).astype(np.int64)
            rho = kernels.bin_overlap(
                xlo, xhi, ylo, yhi, ix0, iy0,
                self._kx, self._ky, self._scale, dim, self.bin_w, self.bin_h,
            )
            span.set(backend=kernels.current())
        return rho

    def _rasterize_fixed(self) -> np.ndarray:
        """Exact per-bin area of fixed objects, clipped at the bin area."""
        dim = self.dim
        die = self._design.die
        design = self._design
        fixed_idx = np.flatnonzero(~design.movable)
        if len(fixed_idx) == 0:
            return np.zeros((dim, dim))
        with obs.span("density/fixed", cells=len(fixed_idx)) as span:
            hw = design.w[fixed_idx] / 2.0
            hh = design.h[fixed_idx] / 2.0
            # Die-relative clipped extents; drop objects fully outside.
            x0 = np.maximum(design.x[fixed_idx] - hw, die.xlo) - die.xlo
            x1 = np.minimum(design.x[fixed_idx] + hw, die.xhi) - die.xlo
            y0 = np.maximum(design.y[fixed_idx] - hh, die.ylo) - die.ylo
            y1 = np.minimum(design.y[fixed_idx] + hh, die.yhi) - die.ylo
            keep = (x1 > x0) & (y1 > y0)
            fixed = kernels.rect_area(
                x0[keep], x1[keep], y0[keep], y1[keep],
                dim, self.bin_w, self.bin_h,
            )
            span.set(backend=kernels.current())
        return np.minimum(fixed, self.bin_area)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def overflow(self, x: np.ndarray, y: np.ndarray) -> float:
        """Density overflow: clipped excess area over the density target,
        normalized by total movable area (the paper's trigger metric)."""
        mov = self.movable_density(x, y)
        cap = self.target_density * self._free_area
        total_mov = self._charge.sum()
        if total_mov <= 0:
            return 0.0
        return float(np.maximum(mov - cap, 0.0).sum() / total_mov)

    # ------------------------------------------------------------------
    # Electrostatics
    # ------------------------------------------------------------------

    def potential_and_field(self, rho: np.ndarray) -> tuple:
        """Solve the Poisson system for ``rho``.

        Returns ``(psi, ex, ey)`` on the bin grid, in *index space*; the
        caller converts field samples to physical gradients by dividing by
        the bin dimensions.
        """
        dim = self.dim
        # Synthesis coefficients of rho in the cos-cos basis, normalized
        # so that rho == sum_uv a_uv cos cos and hence laplacian(psi) ==
        # -rho exactly (paper Eqs. 4-5 up to the DCT normalization).
        coef = dctn(rho, type=2) / 4.0
        weight = np.full(dim, 2.0)
        weight[0] = 1.0
        coef *= np.outer(weight, weight) / (dim * dim)
        wu = self._omega[:, None]
        wv = self._omega[None, :]
        denom = wu * wu + wv * wv
        denom[0, 0] = 1.0
        a = coef / denom
        a[0, 0] = 0.0
        psi = _eval_coscos(a)
        ex = _eval_sincos(a * wu)
        ey = _eval_cossin(a * wv)
        denom[0, 0] = 0.0
        return psi, ex, ey

    def penalty_and_grad(self, x: np.ndarray, y: np.ndarray) -> tuple:
        """Density penalty ``D`` (Eq. 3) and its gradient per cell.

        Returns ``(D, gx, gy, overflow)`` where the gradients are full
        per-cell arrays (zero at fixed cells).
        """
        mov_map = self.movable_density(x, y)
        rho = mov_map + self._fixed_map
        psi, ex, ey = self.potential_and_field(rho)

        die = self._design.die
        fx = (np.clip(x[self._mov_idx], die.xlo, die.xhi) - die.xlo) / self.bin_w - 0.5
        fy = (np.clip(y[self._mov_idx], die.ylo, die.yhi) - die.ylo) / self.bin_h - 0.5
        psi_c = _bilinear(psi, fx, fy)
        ex_c = _bilinear(ex, fx, fy) / self.bin_w
        ey_c = _bilinear(ey, fx, fy) / self.bin_h

        penalty = float((self._charge * psi_c).sum())
        gx = np.zeros_like(x)
        gy = np.zeros_like(y)
        gx[self._mov_idx] = -self._charge * ex_c
        gy[self._mov_idx] = -self._charge * ey_c

        cap = self.target_density * self._free_area
        total_mov = self._charge.sum()
        ovf = float(np.maximum(mov_map - cap, 0.0).sum() / max(total_mov, 1e-12))
        return penalty, gx, gy, ovf


# ----------------------------------------------------------------------
# Spectral evaluation helpers
# ----------------------------------------------------------------------


def _eval_coscos(c: np.ndarray) -> np.ndarray:
    """``f_mn = sum_uv c_uv cos(w_u (m+1/2)) cos(w_v (n+1/2))``."""
    m, n = c.shape
    d = c.copy()
    d[0, :] *= 2.0
    d[:, 0] *= 2.0
    return idctn(d, type=2) * (m * n)


def _flip_for_sin(c: np.ndarray, axis: int) -> np.ndarray:
    """Coefficient transform turning a sin series into a cos series.

    ``sum_u c_u sin(w_u (m+1/2)) = (-1)^m sum_u z_u cos(w_u (m+1/2))``
    with ``z_0 = 0`` and ``z_u = c_{M-u}``.
    """
    z = np.zeros_like(c)
    if axis == 0:
        z[1:, :] = c[:0:-1, :]
    else:
        z[:, 1:] = c[:, :0:-1]
    return z


def _eval_sincos(c: np.ndarray) -> np.ndarray:
    """``f_mn = sum_uv c_uv sin(w_u (m+1/2)) cos(w_v (n+1/2))``."""
    out = _eval_coscos(_flip_for_sin(c, axis=0))
    signs = np.where(np.arange(c.shape[0]) % 2 == 0, 1.0, -1.0)
    return out * signs[:, None]


def _eval_cossin(c: np.ndarray) -> np.ndarray:
    """``f_mn = sum_uv c_uv cos(w_u (m+1/2)) sin(w_v (n+1/2))``."""
    out = _eval_coscos(_flip_for_sin(c, axis=1))
    signs = np.where(np.arange(c.shape[1]) % 2 == 0, 1.0, -1.0)
    return out * signs[None, :]


def _bilinear(grid: np.ndarray, fx: np.ndarray, fy: np.ndarray) -> np.ndarray:
    """Bilinear interpolation of ``grid`` at fractional bin indices."""
    m, n = grid.shape
    fx = np.clip(fx, 0.0, m - 1.0)
    fy = np.clip(fy, 0.0, n - 1.0)
    i0 = np.clip(np.floor(fx).astype(np.int64), 0, m - 1)
    j0 = np.clip(np.floor(fy).astype(np.int64), 0, n - 1)
    i1 = np.minimum(i0 + 1, m - 1)
    j1 = np.minimum(j0 + 1, n - 1)
    tx = fx - i0
    ty = fy - j0
    return (
        grid[i0, j0] * (1 - tx) * (1 - ty)
        + grid[i1, j0] * tx * (1 - ty)
        + grid[i0, j1] * (1 - tx) * ty
        + grid[i1, j1] * tx * ty
    )
