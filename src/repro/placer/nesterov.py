"""Nesterov's accelerated gradient method with Lipschitz backtracking.

This is the optimizer of ePlace [14]: the steplength is predicted from the
inverse of a local Lipschitz-constant estimate
``alpha_k = ||v_k - v_{k-1}|| / ||g(v_k) - g(v_{k-1})||`` and corrected by
a short backtracking loop.  The optimizer is objective-agnostic: it pulls
gradients from a callable, so the engine can swap smoothing parameters,
density penalties, and cell padding between iterations (calling
:meth:`NesterovOptimizer.reset_momentum` whenever the objective changed
discontinuously).
"""

from __future__ import annotations

import numpy as np

from .. import obs


class NesterovOptimizer:
    """Accelerated gradient descent over concatenated ``(x, y)`` vectors.

    Args:
        grad_fn: callable mapping a solution vector ``z`` to its
            (preconditioned) gradient; evaluated at reference points.
        project_fn: callable clamping a solution vector to the feasible
            box (die bounds); applied to every candidate.
        z0: initial solution.
        initial_step: first steplength (before Lipschitz prediction).
        backtracks: maximum extra gradient evaluations per iteration.
        shrink_tolerance: accept the predicted step when the re-estimated
            steplength is at least this fraction of it.
    """

    def __init__(
        self,
        grad_fn,
        project_fn,
        z0: np.ndarray,
        initial_step: float,
        backtracks: int = 2,
        shrink_tolerance: float = 0.95,
    ) -> None:
        self._grad_fn = grad_fn
        self._project = project_fn
        self.u = project_fn(np.asarray(z0, dtype=np.float64).copy())
        self.v = self.u.copy()
        self._a = 1.0
        self._alpha = float(initial_step)
        self._g_v = None
        self._backtracks = backtracks
        self._tol = shrink_tolerance
        self.grad_evals = 0

    def reset_momentum(self) -> None:
        """Forget acceleration history after an objective change."""
        self._a = 1.0
        self.v = self.u.copy()
        self._g_v = None

    def step(self) -> np.ndarray:
        """One accelerated iteration; returns the new major solution."""
        evals_before = self.grad_evals
        if self._g_v is None:
            self._g_v = self._grad_fn(self.v)
            self.grad_evals += 1
        alpha = self._alpha
        accepted = None
        for attempt in range(self._backtracks + 1):
            u_next = self._project(self.v - alpha * self._g_v)
            a_next = (1.0 + np.sqrt(4.0 * self._a * self._a + 1.0)) / 2.0
            v_next = self._project(
                u_next + (self._a - 1.0) / a_next * (u_next - self.u)
            )
            g_next = self._grad_fn(v_next)
            self.grad_evals += 1
            alpha_hat = _steplength(v_next - self.v, g_next - self._g_v, alpha)
            accepted = (u_next, v_next, a_next, g_next, alpha_hat)
            if alpha_hat >= self._tol * alpha or attempt == self._backtracks:
                break
            alpha = alpha_hat
        self.u, self.v, self._a, self._g_v, self._alpha = accepted
        obs.counter("gp/grad_evals").inc(self.grad_evals - evals_before)
        if attempt:
            obs.counter("gp/backtracks").inc(attempt)
        return self.u


def _steplength(dz: np.ndarray, dg: np.ndarray, fallback: float) -> float:
    """Inverse local Lipschitz estimate ``||dz|| / ||dg||``."""
    num = float(np.linalg.norm(dz))
    den = float(np.linalg.norm(dg))
    if den <= 1e-18 or num <= 1e-18:
        return fallback
    return num / den
