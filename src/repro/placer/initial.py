"""Initial placement for the global placer.

A damped fixed-point iteration of the star-model quadratic program: each
net pulls its pins toward the net centroid and each movable cell moves
toward the average centroid of its nets.  Fixed cells (macros, IO pads)
act as anchors.  A small jitter breaks the symmetry of fully-floating
designs so the electrostatic spreading has a gradient to follow.
"""

from __future__ import annotations

import numpy as np

from ..netlist.design import Design
from .params import PlacementParams


def initial_place(
    design: Design,
    params: PlacementParams | None = None,
    iterations: int = 60,
    damping: float = 0.5,
) -> None:
    """Overwrite movable-cell positions with a quadratic-style seed.

    Args:
        design: the design to place (positions mutate in place).
        params: placement parameters (seed and jitter come from here).
        iterations: fixed-point iterations of the star model.
        damping: fraction of the old position retained per iteration.
    """
    params = params or PlacementParams()
    rng = np.random.default_rng(params.seed)
    die = design.die
    movable = design.movable

    # Start every movable cell at the die center.
    design.x[movable] = die.center.x
    design.y[movable] = die.center.y

    if design.num_pins:
        _star_model_iterations(design, iterations, damping)

    bin_w = die.width / 64.0
    n_mov = int(movable.sum())
    design.x[movable] += rng.uniform(-1, 1, n_mov) * params.initial_noise * bin_w
    design.y[movable] += rng.uniform(-1, 1, n_mov) * params.initial_noise * bin_w
    clamp_to_die(design)


def _star_model_iterations(design: Design, iterations: int, damping: float) -> None:
    net_start = design.net_start
    net_pins = design.net_pins
    pin_cell = design.pin_cell[net_pins]
    degrees = np.diff(net_start)
    nonempty = degrees > 0
    starts = net_start[:-1][nonempty]
    repeat = degrees[nonempty]
    movable = design.movable
    counts = np.zeros(design.num_cells)
    np.add.at(counts, pin_cell, 1.0)
    counts = np.maximum(counts, 1.0)

    for _ in range(iterations):
        px = design.x[pin_cell]
        py = design.y[pin_cell]
        cx = np.add.reduceat(px, starts) / repeat
        cy = np.add.reduceat(py, starts) / repeat
        # Scatter each net centroid back onto its member cells.
        tgt_x = np.zeros(design.num_cells)
        tgt_y = np.zeros(design.num_cells)
        np.add.at(tgt_x, pin_cell, np.repeat(cx, repeat))
        np.add.at(tgt_y, pin_cell, np.repeat(cy, repeat))
        tgt_x /= counts
        tgt_y /= counts
        design.x[movable] = damping * design.x[movable] + (1 - damping) * tgt_x[movable]
        design.y[movable] = damping * design.y[movable] + (1 - damping) * tgt_y[movable]


def clamp_to_die(design: Design) -> None:
    """Clamp movable cell centers so outlines stay inside the die."""
    movable = design.movable
    die = design.die
    half_w = design.w[movable] / 2
    half_h = design.h[movable] / 2
    design.x[movable] = np.clip(design.x[movable], die.xlo + half_w, die.xhi - half_w)
    design.y[movable] = np.clip(design.y[movable], die.ylo + half_h, die.yhi - half_h)
