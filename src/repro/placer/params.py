"""Tunable parameters of the electrostatic global placer."""

from __future__ import annotations

from dataclasses import dataclass

from ..schema import dataclass_from_dict, dataclass_to_dict


@dataclass
class PlacementParams:
    """Knobs of :class:`repro.placer.engine.GlobalPlacer`.

    Attributes:
        target_density: bin-utilization target for the density penalty.
        grid_dim: density grid dimension ``M`` (``None`` picks a power of
            two from the cell count, clamped to [32, 256]).
        target_overflow: density-overflow value at which global placement
            stops (paper engines typically use 0.07-0.10).
        max_iters: Nesterov iteration cap.
        min_iters: iterations run before convergence may be declared.
        gamma_scale: multiplier on the bin size in the wirelength
            smoothing schedule (ePlace uses 8.0).
        lambda_mu_max / lambda_mu_min: clamp on the per-iteration density
            penalty multiplier.
        delta_hpwl_ref_frac: reference HPWL change for the penalty update,
            as a fraction of the initial HPWL.
        initial_noise: uniform jitter (in bin widths) applied by the
            initial placement to break symmetry.
        initial_placer: seed algorithm, ``"star"`` (damped fixed-point
            star model) or ``"quadratic"`` (sparse-CG quadratic solve).
        seed: RNG seed for the initial placement.
        verbose: print per-iteration progress.
    """

    target_density: float = 0.9
    grid_dim: int | None = None
    target_overflow: float = 0.08
    max_iters: int = 700
    min_iters: int = 30
    gamma_scale: float = 8.0
    lambda_mu_max: float = 1.05
    lambda_mu_min: float = 0.98
    delta_hpwl_ref_frac: float = 0.05
    initial_noise: float = 0.25
    initial_placer: str = "star"
    seed: int = 7
    verbose: bool = False

    def to_dict(self) -> dict:
        """JSON-safe wire dict (see :mod:`repro.schema`)."""
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PlacementParams":
        """Rebuild from :meth:`to_dict`; unknown keys raise ``SchemaError``."""
        return dataclass_from_dict(cls, data)

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range settings."""
        if not 0.1 <= self.target_density <= 1.0:
            raise ValueError(f"target_density out of range: {self.target_density}")
        if self.grid_dim is not None and self.grid_dim < 8:
            raise ValueError("grid_dim must be at least 8")
        if not 0.0 < self.target_overflow < 1.0:
            raise ValueError("target_overflow must be in (0, 1)")
        if self.max_iters < self.min_iters:
            raise ValueError("max_iters < min_iters")
        if self.lambda_mu_min > self.lambda_mu_max:
            raise ValueError("lambda mu clamp inverted")
        if self.initial_placer not in ("star", "quadratic"):
            raise ValueError(f"unknown initial placer {self.initial_placer!r}")
