"""Electrostatics-based (ePlace) global placement engine."""

from .density import ElectrostaticDensity, auto_grid_dim
from .engine import GlobalPlaceResult, GlobalPlacer, IterationRecord, PlacerState
from .initial import clamp_to_die, initial_place
from .nesterov import NesterovOptimizer
from .params import PlacementParams
from .quadratic import initial_place_quadratic
from .wirelength import WirelengthModel, gamma_schedule

__all__ = [
    "ElectrostaticDensity",
    "GlobalPlaceResult",
    "GlobalPlacer",
    "IterationRecord",
    "NesterovOptimizer",
    "PlacementParams",
    "PlacerState",
    "WirelengthModel",
    "auto_grid_dim",
    "clamp_to_die",
    "gamma_schedule",
    "initial_place",
    "initial_place_quadratic",
]
