"""Wirelength models: HPWL and the weighted-average (WA) smooth model.

The WA model (paper Eq. 2, after [15], [16]) approximates the per-net
half-perimeter wirelength with a differentiable expression

``WA+ = sum_j x_j e^{x_j/gamma} / sum_j e^{x_j/gamma}`` (and the mirrored
``WA-``), whose accuracy is controlled by the smoothing parameter
``gamma``.  All kernels are vectorized over a CSR net structure: pin
coordinates are gathered in net order and per-net reductions use
``np.ufunc.reduceat``.
"""

from __future__ import annotations

import numpy as np

from ..netlist.design import Design


class WirelengthModel:
    """Vectorized WA wirelength and gradient evaluator for one design.

    The evaluator is bound to the design's net topology at construction;
    positions are passed per call so the Nesterov optimizer can evaluate
    reference points without mutating the design.
    """

    def __init__(self, design: Design) -> None:
        self._design = design
        self._net_start = design.net_start
        self._net_pins = design.net_pins
        degrees = np.diff(design.net_start)
        self._nonempty = degrees > 0
        self._starts = design.net_start[:-1][self._nonempty]
        # Per ordered pin: repeat factor mapping net-level values to pins.
        self._pin_repeat = degrees[self._nonempty]
        self._pin_cell_ordered = design.pin_cell[design.net_pins]
        self._pin_dx_ordered = design.pin_dx[design.net_pins]
        self._pin_dy_ordered = design.pin_dy[design.net_pins]

    def pin_coords(self, x: np.ndarray, y: np.ndarray) -> tuple:
        """Absolute pin coordinates in net order for positions ``x, y``."""
        px = x[self._pin_cell_ordered] + self._pin_dx_ordered
        py = y[self._pin_cell_ordered] + self._pin_dy_ordered
        return px, py

    def hpwl(self, x: np.ndarray, y: np.ndarray) -> float:
        """Exact half-perimeter wirelength."""
        px, py = self.pin_coords(x, y)
        wx = np.maximum.reduceat(px, self._starts) - np.minimum.reduceat(px, self._starts)
        wy = np.maximum.reduceat(py, self._starts) - np.minimum.reduceat(py, self._starts)
        return float(wx.sum() + wy.sum())

    def wa_and_grad(
        self, x: np.ndarray, y: np.ndarray, gamma: float
    ) -> tuple:
        """WA wirelength and its gradient with respect to cell centers.

        Returns:
            ``(wl, gx, gy)`` where ``wl`` is the total WA wirelength and
            ``gx``/``gy`` are per-cell gradients (zero for fixed cells is
            the caller's responsibility to enforce when updating).
        """
        px, py = self.pin_coords(x, y)
        wlx, gpx = _wa_direction(px, self._starts, self._pin_repeat, gamma)
        wly, gpy = _wa_direction(py, self._starts, self._pin_repeat, gamma)
        gx = np.zeros_like(x)
        gy = np.zeros_like(y)
        np.add.at(gx, self._pin_cell_ordered, gpx)
        np.add.at(gy, self._pin_cell_ordered, gpy)
        return float(wlx + wly), gx, gy


def _wa_direction(
    p: np.ndarray, starts: np.ndarray, repeat: np.ndarray, gamma: float
) -> tuple:
    """WA wirelength and per-pin gradient along one axis.

    Uses max/min-shifted exponentials for numerical stability; the shift
    cancels exactly in both the value and the gradient.
    """
    pmax = np.repeat(np.maximum.reduceat(p, starts), repeat)
    pmin = np.repeat(np.minimum.reduceat(p, starts), repeat)
    ep = np.exp((p - pmax) / gamma)
    en = np.exp((pmin - p) / gamma)
    sp = np.add.reduceat(ep, starts)
    sn = np.add.reduceat(en, starts)
    sxp = np.add.reduceat(p * ep, starts)
    sxn = np.add.reduceat(p * en, starts)
    wa = float((sxp / sp - sxn / sn).sum())

    sp_r = np.repeat(sp, repeat)
    sn_r = np.repeat(sn, repeat)
    sxp_r = np.repeat(sxp, repeat)
    sxn_r = np.repeat(sxn, repeat)
    grad_plus = ((1.0 + p / gamma) * sp_r - sxp_r / gamma) * ep / (sp_r * sp_r)
    grad_minus = ((1.0 - p / gamma) * sn_r + sxn_r / gamma) * en / (sn_r * sn_r)
    return wa, grad_plus - grad_minus


def gamma_schedule(base: float, overflow: float) -> float:
    """ePlace's smoothing schedule: tighten gamma as cells spread.

    ``gamma = base * 10^{(20*overflow - 11) / 9}`` interpolates from
    ``10*base`` at overflow 1.0 down to ``0.1*base`` at overflow 0.1.
    """
    exponent = (20.0 * float(np.clip(overflow, 0.0, 1.0)) - 11.0) / 9.0
    return base * 10.0 ** exponent
