"""The ePlace-style global placement engine.

Minimizes ``f = W_WA + lambda * D`` (paper Eq. 1) with Nesterov's method.
The engine exposes an iteration *hook* interface: after every iteration
each registered hook receives a :class:`PlacerState` and may mutate the
effective (padded) cell sizes through
:meth:`GlobalPlacer.set_density_sizes` — this is the seam PUFFER's
routability optimizer plugs into.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..netlist.design import Design
from .density import ElectrostaticDensity
from .initial import clamp_to_die, initial_place
from .nesterov import NesterovOptimizer
from .params import PlacementParams
from .wirelength import WirelengthModel, gamma_schedule


@dataclass
class IterationRecord:
    """Progress snapshot of one engine iteration."""

    iteration: int
    hpwl: float
    overflow: float
    penalty_factor: float
    gamma: float


@dataclass
class GlobalPlaceResult:
    """Outcome of :meth:`GlobalPlacer.run`."""

    hpwl: float
    overflow: float
    iterations: int
    runtime: float
    grad_evals: int
    converged: bool
    history: list = field(default_factory=list)


class PlacerState:
    """Read-mostly view of the running engine handed to iteration hooks."""

    def __init__(self, placer: "GlobalPlacer") -> None:
        self.placer = placer
        self.design = placer.design
        self.density = placer.density

    @property
    def iteration(self) -> int:
        return self.placer.iteration

    @property
    def overflow(self) -> float:
        return self.placer.overflow

    @property
    def hpwl(self) -> float:
        return self.placer.hpwl

    @property
    def penalty_factor(self) -> float:
        return self.placer.penalty_factor

    def set_density_sizes(self, w_eff: np.ndarray, h_eff: np.ndarray) -> None:
        """Replace effective cell extents (PUFFER padding entry point)."""
        self.placer.set_density_sizes(w_eff, h_eff)


class GlobalPlacer:
    """Analytical global placement with pluggable routability hooks.

    Args:
        design: design to place; positions are updated in place.
        params: engine parameters.
        hooks: callables ``hook(state) -> bool``; a ``True`` return means
            the hook changed the objective (e.g. applied padding) and the
            optimizer momentum must be reset.
        seed_positions: when ``True``, run the star-model initial
            placement first; otherwise start from the current positions.
    """

    def __init__(
        self,
        design: Design,
        params: PlacementParams | None = None,
        hooks: list | None = None,
        seed_positions: bool = True,
    ) -> None:
        self.design = design
        self.params = params or PlacementParams()
        self.params.validate()
        self.hooks = list(hooks or [])
        self._seed_positions = seed_positions
        self.density = ElectrostaticDensity(design, self.params)
        self.wirelength = WirelengthModel(design)
        self._mov = np.flatnonzero(design.movable)
        self._pin_counts = np.bincount(design.pin_cell, minlength=design.num_cells)
        self.iteration = 0
        self.overflow = 1.0
        self.hpwl = 0.0
        self.penalty_factor = 0.0
        self.gamma = 1.0
        self._objective_changed = False

    # ------------------------------------------------------------------
    # Hook support
    # ------------------------------------------------------------------

    def set_density_sizes(self, w_eff: np.ndarray, h_eff: np.ndarray) -> None:
        """Install padded cell extents into the electrostatic system."""
        self.density.set_sizes(w_eff, h_eff)
        self._objective_changed = True

    # ------------------------------------------------------------------
    # Gradient plumbing
    # ------------------------------------------------------------------

    def _unpack(self, z: np.ndarray) -> tuple:
        x = self.design.x.copy()
        y = self.design.y.copy()
        n = len(self._mov)
        x[self._mov] = z[:n]
        y[self._mov] = z[n:]
        return x, y

    def _pack(self) -> np.ndarray:
        return np.concatenate(
            [self.design.x[self._mov], self.design.y[self._mov]]
        )

    def _project(self, z: np.ndarray) -> np.ndarray:
        die = self.design.die
        n = len(self._mov)
        half_w = self.design.w[self._mov] / 2
        half_h = self.design.h[self._mov] / 2
        z = z.copy()
        z[:n] = np.clip(z[:n], die.xlo + half_w, die.xhi - half_w)
        z[n:] = np.clip(z[n:], die.ylo + half_h, die.yhi - half_h)
        return z

    def _gradient(self, z: np.ndarray) -> np.ndarray:
        x, y = self._unpack(z)
        _, gwx, gwy = self.wirelength.wa_and_grad(x, y, self.gamma)
        _, gdx, gdy, ovf = self.density.penalty_and_grad(x, y)
        self._eval_overflow = ovf
        lam = self.penalty_factor
        charge = np.zeros(self.design.num_cells)
        charge[self.density.movable_indices] = self.density.charge
        precond = np.maximum(self._pin_counts + lam * charge, 1.0)
        gx = (gwx + lam * gdx) / precond
        gy = (gwy + lam * gdy) / precond
        return np.concatenate([gx[self._mov], gy[self._mov]])

    def _initial_penalty_factor(self, z: np.ndarray) -> float:
        x, y = self._unpack(z)
        _, gwx, gwy = self.wirelength.wa_and_grad(x, y, self.gamma)
        _, gdx, gdy, _ = self.density.penalty_and_grad(x, y)
        wl_norm = float(np.abs(gwx[self._mov]).sum() + np.abs(gwy[self._mov]).sum())
        d_norm = float(np.abs(gdx[self._mov]).sum() + np.abs(gdy[self._mov]).sum())
        return wl_norm / max(d_norm, 1e-12)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> GlobalPlaceResult:
        """Place the design; returns the convergence record."""
        with obs.span("gp/run") as run_span:
            result = self._run()
            run_span.set(
                iterations=result.iterations,
                hpwl=result.hpwl,
                overflow=result.overflow,
                converged=result.converged,
            )
        return result

    def _run(self) -> GlobalPlaceResult:
        start = time.perf_counter()
        params = self.params
        design = self.design
        if self._seed_positions:
            with obs.span("gp/initial_place", placer=params.initial_placer):
                if params.initial_placer == "quadratic":
                    from .quadratic import initial_place_quadratic

                    initial_place_quadratic(design, params)
                else:
                    initial_place(design, params)
        clamp_to_die(design)

        base_gamma = params.gamma_scale * max(self.density.bin_w, self.density.bin_h)
        self.overflow = self.density.overflow(design.x, design.y)
        self.gamma = gamma_schedule(base_gamma, self.overflow)
        z = self._project(self._pack())
        self.penalty_factor = self._initial_penalty_factor(z)
        self._eval_overflow = self.overflow

        g0 = self._gradient(z)
        g_inf = float(np.abs(g0).max()) if len(g0) else 1.0
        initial_step = 0.1 * self.density.bin_w / max(g_inf, 1e-12)
        optimizer = NesterovOptimizer(self._gradient, self._project, z, initial_step)

        hpwl_prev = self.wirelength.hpwl(design.x, design.y)
        hpwl_ref = max(params.delta_hpwl_ref_frac * max(hpwl_prev, 1.0), 1e-9)
        history = []
        converged = False
        state = PlacerState(self)

        overflow_hist = obs.histogram("gp/overflow")
        hpwl_hist = obs.histogram("gp/hpwl")
        for k in range(params.max_iters):
            self.iteration = k
            with obs.span("gp/iteration", i=k) as it_span:
                z = optimizer.step()
                x, y = self._unpack(z)
                design.x[:] = x
                design.y[:] = y
                self.overflow = self._eval_overflow
                self.hpwl = self.wirelength.hpwl(x, y)

                # Penalty-factor schedule (ePlace): reward HPWL reduction.
                delta = self.hpwl - hpwl_prev
                mu = params.lambda_mu_max ** (1.0 - delta / hpwl_ref)
                mu = float(np.clip(mu, params.lambda_mu_min, params.lambda_mu_max))
                self.penalty_factor *= mu
                hpwl_prev = self.hpwl
                self.gamma = gamma_schedule(base_gamma, self.overflow)

                history.append(
                    IterationRecord(k, self.hpwl, self.overflow, self.penalty_factor, self.gamma)
                )
                overflow_hist.observe(self.overflow)
                hpwl_hist.observe(self.hpwl)
                if params.verbose and k % 25 == 0:
                    print(
                        f"  iter {k:4d}  hpwl {self.hpwl:.4g}  ovf {self.overflow:.4f}"
                        f"  lambda {self.penalty_factor:.3g}"
                    )

                self._objective_changed = False
                for hook in self.hooks:
                    if hook(state):
                        self._objective_changed = True
                if self._objective_changed:
                    optimizer.reset_momentum()
                it_span.set(hpwl=self.hpwl, overflow=self.overflow)

            if self.overflow < params.target_overflow and k >= params.min_iters:
                converged = True
                break

        return GlobalPlaceResult(
            hpwl=self.hpwl,
            overflow=self.overflow,
            iterations=self.iteration + 1,
            runtime=time.perf_counter() - start,
            grad_evals=optimizer.grad_evals,
            converged=converged,
            history=history,
        )
