"""Tunable parameters of the fixed-slot placement mode."""

from __future__ import annotations

from dataclasses import dataclass

from ..schema import dataclass_from_dict, dataclass_to_dict

#: Valid initial-assignment strategies.
INITIAL_STRATEGIES = ("greedy", "random")


@dataclass
class SlotParams:
    """Knobs of :func:`repro.slots.place_slots`.

    Attributes:
        margin: slot-count head-room per width class — the grid carries
            ``ceil(margin * cells)`` slots of each width so the
            assignment problem never becomes a perfect matching.
        initial: initial-assignment strategy — ``"greedy"`` (I/O-driven
            seed-and-grow toward the median of placed neighbors) or
            ``"random"`` (uniform over fitting free slots; the
            benchmark baseline).
        sa_iters: simulated-annealing refinement iterations; ``None``
            scales with the cell count (clamped to [2000, 120000]),
            ``0`` disables refinement.
        sa_swap_prob: probability that an SA move swaps two assigned
            cells instead of relocating one cell to a free slot.
        sa_temp: initial annealing temperature; ``None`` calibrates
            from the mean |ΔHPWL| of sampled random moves.
        sa_cooling: per-iteration geometric cooling factor; ``None``
            derives a schedule ending near ``1e-3 * sa_temp``.
    """

    margin: float = 1.15
    initial: str = "greedy"
    sa_iters: int | None = None
    sa_swap_prob: float = 0.5
    sa_temp: float | None = None
    sa_cooling: float | None = None

    def to_dict(self) -> dict:
        """JSON-safe wire dict (see :mod:`repro.schema`)."""
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SlotParams":
        """Rebuild from :meth:`to_dict`; unknown keys raise ``SchemaError``."""
        return dataclass_from_dict(cls, data)

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range settings."""
        if self.margin < 1.0:
            raise ValueError(f"margin must be >= 1.0, got {self.margin}")
        if self.initial not in INITIAL_STRATEGIES:
            raise ValueError(
                f"unknown initial strategy {self.initial!r}; "
                f"expected one of {INITIAL_STRATEGIES}"
            )
        if self.sa_iters is not None and self.sa_iters < 0:
            raise ValueError("sa_iters must be non-negative")
        if not 0.0 <= self.sa_swap_prob <= 1.0:
            raise ValueError("sa_swap_prob must be in [0, 1]")
        if self.sa_temp is not None and self.sa_temp <= 0.0:
            raise ValueError("sa_temp must be positive")
        if self.sa_cooling is not None and not 0.0 < self.sa_cooling <= 1.0:
            raise ValueError("sa_cooling must be in (0, 1]")
