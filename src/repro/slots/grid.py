"""Slot-grid generation for structured-ASIC placement.

A structured ASIC pre-fabricates legal cell sites ("slots"); placement
degenerates to an assignment problem.  :func:`generate_slots` derives a
slot grid from the design's own technology and cell-width histogram:
each distinct movable-cell width gets ``ceil(margin * count)`` slots,
interleaved across the rows so every width class is available near any
die region, packed around fixed objects and placement blockages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..netlist.design import Design
from ..netlist.geometry import Rect


@dataclass
class SlotGrid:
    """A fixed library of legal standard-cell slots.

    Arrays are parallel, sorted by ``(row, x)``.

    Attributes:
        x: slot left edges (site-aligned).
        y: slot bottoms (row-aligned).
        w: slot widths (whole sites).
        row: row index of each slot.
        die: the die the grid was generated for.
        row_height: the fabric's row height (every slot is one row tall).
    """

    x: np.ndarray
    y: np.ndarray
    w: np.ndarray
    row: np.ndarray
    die: Rect
    row_height: float

    @property
    def num_slots(self) -> int:
        """Number of slots in the grid."""
        return len(self.x)

    def rect(self, i: int) -> Rect:
        """Outline of slot ``i``."""
        return Rect(
            float(self.x[i]),
            float(self.y[i]),
            float(self.x[i] + self.w[i]),
            float(self.y[i] + self.row_height),
        )

    def centers(self) -> tuple:
        """``(cx, cy)`` arrays of every slot's center."""
        return self.x + self.w / 2.0, self.y + self.row_height / 2.0


def movable_std_cells(design: Design) -> np.ndarray:
    """Indices of movable standard cells (the slot-assignment domain)."""
    return np.flatnonzero(design.movable & ~design.is_macro)


def generate_slots(design: Design, margin: float = 1.15, seed: int = 0) -> SlotGrid:
    """Derive a deterministic slot grid for ``design``.

    Slot widths follow the movable-cell width histogram with ``margin``
    head-room per class; the width multiset is shuffled (seeded) and
    packed row by row into the free intervals left by fixed objects and
    sub-routing-layer blockages, which interleaves the classes across
    the die.

    Raises:
        ValueError: when cells are not one row tall, or when the packed
            grid cannot host every cell (nested Hall condition — for
            each width ``w``, cells at least ``w`` wide need at least as
            many slots at least ``w`` wide).
    """
    tech = design.technology
    site = tech.site_width
    rh = tech.row_height
    die = design.die
    cells = movable_std_cells(design)
    if len(cells) == 0:
        raise ValueError("design has no movable standard cells to slot")
    if np.abs(design.h[cells] - rh).max() > 1e-6:
        raise ValueError("slot mode requires movable cells one row tall")

    cell_sites = np.ceil(design.w[cells] / site - 1e-9).astype(np.int64)
    classes, counts = np.unique(cell_sites, return_counts=True)
    slot_widths: list = []
    for width_sites, count in zip(classes, counts):
        slot_widths += [int(width_sites)] * math.ceil(margin * int(count))
    rng = np.random.default_rng(seed)
    rng.shuffle(slot_widths)

    segments = _free_segments(design, die, site, rh)
    xs, ys, ws, rows = _pack(slot_widths, segments, site, die, rh)

    _check_capacity(classes, counts, np.asarray(ws, dtype=np.int64))

    order = np.lexsort((np.asarray(xs), np.asarray(rows)))
    return SlotGrid(
        x=np.asarray(xs, dtype=np.float64)[order],
        y=np.asarray(ys, dtype=np.float64)[order],
        w=np.asarray(ws, dtype=np.float64)[order] * site,
        row=np.asarray(rows, dtype=np.int64)[order],
        die=die,
        row_height=rh,
    )


def _free_segments(design: Design, die: Rect, site: float, rh: float) -> list:
    """Per-row free x intervals ``[(row, xlo, xhi), ...]`` in sites.

    A row's span is blocked by any fixed cell, macro, or placement
    blockage (layer below ``routing_layers_start``) overlapping it.
    """
    routing_start = design.technology.routing_layers_start
    obstacles = []
    for i in np.flatnonzero(~design.movable | design.is_macro):
        obstacles.append(design.cell_rect(int(i)))
    for blk in design.blockages:
        if blk.layer < routing_start:
            clipped = blk.rect.intersection(die)
            if clipped is not None:
                obstacles.append(clipped)

    num_rows = int(math.floor((die.yhi - die.ylo) / rh + 1e-9))
    segments = []
    for r in range(num_rows):
        ylo = die.ylo + r * rh
        yhi = ylo + rh
        blocked = sorted(
            (max(o.xlo, die.xlo), min(o.xhi, die.xhi))
            for o in obstacles
            if o.ylo < yhi - 1e-9 and o.xlo < o.xhi and ylo < o.yhi - 1e-9
        )
        cursor = die.xlo
        for bxlo, bxhi in blocked:
            if bxlo > cursor:
                segments.append((r, cursor, bxlo))
            cursor = max(cursor, bxhi)
        if cursor < die.xhi:
            segments.append((r, cursor, die.xhi))
    # Snap segment starts up to the site grid relative to the die edge.
    snapped = []
    for r, xlo, xhi in segments:
        start = die.xlo + math.ceil((xlo - die.xlo) / site - 1e-9) * site
        if xhi - start >= site:
            snapped.append((r, start, xhi))
    return snapped


def _pack(slot_widths: list, segments: list, site: float, die: Rect, rh: float):
    """Pack the width multiset into free segments, row-interleaved.

    Each slot is offered to the rows in cyclic order starting one past
    the previous placement, so consecutive entries of the (shuffled)
    width list land in different rows and every region of the die sees
    every width class.  Slots that fit nowhere are dropped — the margin
    head-room absorbs that, and the capacity check catches a genuine
    shortfall.
    """
    xs: list = []
    ys: list = []
    ws: list = []
    rows: list = []
    # Per-row segment cursors: row -> list of [cursor, end].
    by_row: dict = {}
    for r, xlo, xhi in segments:
        by_row.setdefault(r, []).append([xlo, xhi])
    row_ids = sorted(by_row)
    if not row_ids:
        return xs, ys, ws, rows
    pointer = 0
    for width_sites in slot_widths:
        width = width_sites * site
        for attempt in range(len(row_ids)):
            r = row_ids[(pointer + attempt) % len(row_ids)]
            placed = False
            for seg in by_row[r]:
                if seg[0] + width <= seg[1] + 1e-9:
                    xs.append(seg[0])
                    ys.append(die.ylo + r * rh)
                    ws.append(int(width_sites))
                    rows.append(r)
                    seg[0] += width
                    placed = True
                    break
            if placed:
                pointer = (pointer + attempt + 1) % len(row_ids)
                break
    return xs, ys, ws, rows


def _check_capacity(classes: np.ndarray, counts: np.ndarray, slot_sites: np.ndarray):
    """Nested Hall condition: wide cells must find enough wide slots."""
    for width in classes[::-1]:
        need = int(counts[classes >= width].sum())
        have = int((slot_sites >= width).sum())
        if have < need:
            raise ValueError(
                f"slot grid too small: {need} cells need width >= {int(width)}"
                f" sites but only {have} such slots fit the die"
                " (lower utilization or raise the margin)"
            )
