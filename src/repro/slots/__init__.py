"""Structured-ASIC fixed-slot placement.

Cells are assigned to pre-fabricated legal slots instead of being
placed continuously: :func:`generate_slots` derives the slot grid from
the technology and the design's cell-width histogram,
:func:`greedy_assignment` seeds an initial assignment growing inward
from the fixed terminals, and :func:`sa_refine` polishes it with
simulated annealing over incremental HPWL deltas.  :func:`place_slots`
runs the whole pipeline (the ``mode="slots"`` path of
:class:`repro.api.RunConfig`).
"""

from .assign import (
    SaStats,
    SlotPlacementResult,
    apply_assignment,
    greedy_assignment,
    place_slots,
    random_assignment,
    sa_refine,
    slot_position,
)
from .grid import SlotGrid, generate_slots, movable_std_cells
from .params import SlotParams

__all__ = [
    "SaStats",
    "SlotGrid",
    "SlotParams",
    "SlotPlacementResult",
    "apply_assignment",
    "generate_slots",
    "greedy_assignment",
    "movable_std_cells",
    "place_slots",
    "random_assignment",
    "sa_refine",
    "slot_position",
]
