"""Slot assignment: greedy seed-and-grow plus simulated annealing.

The assignment problem maps every movable standard cell onto exactly
one free slot that is at least as wide as the cell.  The greedy pass
grows inward from the fixed boundary terminals, placing each cell on
the nearest fitting slot to the median of its already-placed neighbors;
the annealing pass then refines with relocate / swap moves scored by
:class:`repro.dplace.IncrementalHpwl` deltas.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..dplace import IncrementalHpwl
from ..netlist.design import Design
from .grid import SlotGrid, generate_slots, movable_std_cells
from .params import SlotParams

#: Nets wider than this are skipped when building the greedy adjacency
#: (clock/reset-class nets connect everything and carry no locality).
MAX_ADJ_DEGREE = 32

#: Retry budget when sampling a fitting free slot for an SA relocate.
_SA_SLOT_TRIES = 12


def slot_position(design: Design, grid: SlotGrid, cell: int, slot: int) -> tuple:
    """Center position of ``cell`` when left-aligned into ``slot``."""
    x = float(grid.x[slot]) + float(design.w[cell]) / 2.0
    y = float(grid.y[slot]) + float(design.h[cell]) / 2.0
    return x, y


def apply_assignment(design: Design, grid: SlotGrid, assignment: np.ndarray) -> None:
    """Write slot positions into ``design`` for every assigned cell."""
    for cell in np.flatnonzero(assignment >= 0):
        x, y = slot_position(design, grid, int(cell), int(assignment[cell]))
        design.x[cell] = x
        design.y[cell] = y


class _FreeSlots:
    """Free-slot index: nearest fitting slot to a target point.

    Slots are bucketed by ``(width class, row)`` with a bisect-sorted
    x-center list per bucket; lookup scans width classes that fit and
    rows outward from the target, pruning once the row distance alone
    exceeds the best cost found.
    """

    def __init__(self, grid: SlotGrid, free_ids) -> None:
        self.grid = grid
        self.widths = np.unique(grid.w)
        self.row_y = {}
        self.buckets = {}
        self._slot_key = {}
        for slot in free_ids:
            self.add(int(slot))

    def add(self, slot: int) -> None:
        grid = self.grid
        row = int(grid.row[slot])
        self.row_y[row] = float(grid.y[slot]) + grid.row_height / 2.0
        key = (float(grid.w[slot]), row)
        bucket = self.buckets.setdefault(key, [])
        cx = float(grid.x[slot]) + float(grid.w[slot]) / 2.0
        bisect.insort(bucket, (cx, slot))
        self._slot_key[slot] = (key, cx)

    def remove(self, slot: int) -> None:
        key, cx = self._slot_key.pop(slot)
        bucket = self.buckets[key]
        bucket.pop(bisect.bisect_left(bucket, (cx, slot)))

    def __contains__(self, slot: int) -> bool:
        return slot in self._slot_key

    def __len__(self) -> int:
        return len(self._slot_key)

    def nearest(self, min_width: float, tx: float, ty: float) -> int | None:
        """Nearest free slot to ``(tx, ty)`` in the tightest fitting class.

        Width classes are tried smallest-first and a wider class is only
        consulted when every tighter fitting class is empty — greedily
        handing wide slots to narrow cells would strand the wide cells
        that are their only legal hosts.
        """
        rows = sorted(self.row_y, key=lambda r: abs(self.row_y[r] - ty))
        for width in self.widths:
            if width < min_width - 1e-9:
                continue
            slot = self._nearest_in_class(float(width), rows, tx, ty)
            if slot is not None:
                return slot
        return None

    def _nearest_in_class(self, width: float, rows: list, tx: float, ty: float):
        best_cost = math.inf
        best_slot = None
        for row in rows:
            dy = abs(self.row_y[row] - ty)
            if dy >= best_cost:
                break  # rows are distance-sorted: nothing closer left
            bucket = self.buckets.get((width, row))
            if not bucket:
                continue
            i = bisect.bisect_left(bucket, (tx, -1))
            for j in (i - 1, i):
                if 0 <= j < len(bucket):
                    cx, slot = bucket[j]
                    cost = abs(cx - tx) + dy
                    if cost < best_cost:
                        best_cost = cost
                        best_slot = slot
        return best_slot


def _adjacency(design: Design) -> list:
    """Per-cell neighbor lists over nets of degree <= MAX_ADJ_DEGREE."""
    neighbors: list = [[] for _ in range(design.num_cells)]
    for net in range(design.num_nets):
        pins = design.pins_of_net(net)
        if not 2 <= len(pins) <= MAX_ADJ_DEGREE:
            continue
        cells = np.unique(design.pin_cell[pins])
        for c in cells:
            others = cells[cells != c]
            neighbors[int(c)].extend(int(o) for o in others)
    return neighbors


def _greedy_order(design: Design, cells: np.ndarray, neighbors: list) -> list:
    """BFS levels from the fixed boundary, high-degree cells first."""
    degree = np.bincount(design.pin_cell, minlength=design.num_cells)
    movable_set = set(int(c) for c in cells)
    fixed = np.flatnonzero(~design.movable)
    seen = set()
    frontier = []
    for f in fixed:
        for n in neighbors[int(f)]:
            if n in movable_set and n not in seen:
                seen.add(n)
                frontier.append(n)
    order = []
    frontier.sort(key=lambda c: (-int(degree[c]), c))
    queue = deque(frontier)
    order.extend(frontier)
    while queue:
        level = []
        for _ in range(len(queue)):
            c = queue.popleft()
            for n in neighbors[c]:
                if n in movable_set and n not in seen:
                    seen.add(n)
                    level.append(n)
        level.sort(key=lambda c: (-int(degree[c]), c))
        order.extend(level)
        queue.extend(level)
    rest = sorted(
        (int(c) for c in cells if int(c) not in seen),
        key=lambda c: (-int(degree[c]), c),
    )
    order.extend(rest)
    return order


def greedy_assignment(design: Design, grid: SlotGrid, seed: int = 0) -> np.ndarray:
    """Seed-and-grow initial assignment driven by the net-box objective.

    Cells are visited in BFS order from the fixed terminals; each goes
    to the nearest free fitting slot to the median position of its
    already-placed neighbors (die center when none are placed yet).

    Returns:
        Per-cell slot ids (``-1`` for fixed cells and macros).
    """
    del seed  # deterministic; kept for signature parity with random_assignment
    cells = movable_std_cells(design)
    neighbors = _adjacency(design)
    order = _greedy_order(design, cells, neighbors)
    free = _FreeSlots(grid, range(grid.num_slots))
    assignment = np.full(design.num_cells, -1, dtype=np.int64)
    placed_pos: dict = {}
    for f in np.flatnonzero(~design.movable):
        placed_pos[int(f)] = (float(design.x[f]), float(design.y[f]))
    center = design.die.center
    for cell in order:
        anchors = [placed_pos[n] for n in neighbors[cell] if n in placed_pos]
        if anchors:
            tx = float(np.median([a[0] for a in anchors]))
            ty = float(np.median([a[1] for a in anchors]))
        else:
            tx, ty = center.x, center.y
        slot = free.nearest(float(design.w[cell]), tx, ty)
        if slot is None:
            raise ValueError(
                f"no free slot fits cell {design.cell_names[cell]!r}"
                f" (width {design.w[cell]})"
            )
        free.remove(slot)
        assignment[cell] = slot
        placed_pos[cell] = slot_position(design, grid, cell, slot)
    return assignment


def random_assignment(design: Design, grid: SlotGrid, seed: int = 0) -> np.ndarray:
    """Uniform random assignment over fitting free slots (bench baseline).

    Cells are processed widest-first so narrow cells cannot strand a
    wide one; within a width the choice is uniform over free fitting
    slots.
    """
    rng = np.random.default_rng(seed)
    cells = movable_std_cells(design)
    order = sorted((int(c) for c in cells), key=lambda c: (-design.w[c], c))
    slot_w = grid.w
    free_mask = np.ones(grid.num_slots, dtype=bool)
    assignment = np.full(design.num_cells, -1, dtype=np.int64)
    for cell in order:
        candidates = np.flatnonzero(free_mask & (slot_w >= design.w[cell] - 1e-9))
        if len(candidates) == 0:
            raise ValueError(
                f"no free slot fits cell {design.cell_names[cell]!r}"
                f" (width {design.w[cell]})"
            )
        slot = int(rng.choice(candidates))
        free_mask[slot] = False
        assignment[cell] = slot
    return assignment


@dataclass
class SaStats:
    """Annealing telemetry."""

    iterations: int = 0
    accepted: int = 0
    relocations: int = 0
    swaps: int = 0
    start_temp: float = 0.0
    final_temp: float = 0.0


def sa_refine(
    design: Design,
    grid: SlotGrid,
    assignment: np.ndarray,
    params: SlotParams,
    seed: int = 0,
) -> SaStats:
    """Simulated-annealing refinement with incremental HPWL deltas.

    Mutates ``assignment`` and the design positions in place.  Moves are
    single-cell relocations to a free fitting slot or mutual-fit pair
    swaps, Metropolis-accepted on the exact
    :class:`~repro.dplace.IncrementalHpwl` delta under geometric
    cooling.
    """
    rng = np.random.default_rng(seed)
    cells = movable_std_cells(design)
    apply_assignment(design, grid, assignment)
    inc = IncrementalHpwl(design)
    iters = params.sa_iters
    if iters is None:
        iters = int(min(max(60 * len(cells), 2000), 120_000))
    stats = SaStats(iterations=iters)
    if iters == 0 or len(cells) < 2:
        return stats

    assigned = [int(c) for c in cells if assignment[c] >= 0]
    free_ids = sorted(set(range(grid.num_slots)) - {int(assignment[c]) for c in assigned})
    temp = params.sa_temp or _calibrate_temp(design, grid, assigned, inc, rng)
    cooling = params.sa_cooling or (1e-3) ** (1.0 / max(iters, 1))
    stats.start_temp = temp
    best_total = inc.total
    best_assignment = assignment.copy()

    for _ in range(iters):
        if rng.random() < params.sa_swap_prob:
            a, b = rng.integers(0, len(assigned), size=2)
            if a == b:
                continue
            ca, cb = assigned[int(a)], assigned[int(b)]
            sa_, sb = int(assignment[ca]), int(assignment[cb])
            if grid.w[sb] < design.w[ca] - 1e-9 or grid.w[sa_] < design.w[cb] - 1e-9:
                continue
            moves = {
                ca: slot_position(design, grid, ca, sb),
                cb: slot_position(design, grid, cb, sa_),
            }
            delta = inc.delta(moves)
            if delta < 0 or rng.random() < math.exp(-delta / max(temp, 1e-12)):
                inc.commit(moves)
                assignment[ca], assignment[cb] = sb, sa_
                stats.accepted += 1
                stats.swaps += 1
                if inc.total < best_total:
                    best_total = inc.total
                    best_assignment = assignment.copy()
        elif free_ids:
            cell = assigned[int(rng.integers(0, len(assigned)))]
            slot = None
            for _try in range(_SA_SLOT_TRIES):
                cand = free_ids[int(rng.integers(0, len(free_ids)))]
                if grid.w[cand] >= design.w[cell] - 1e-9:
                    slot = cand
                    break
            if slot is None:
                continue
            moves = {cell: slot_position(design, grid, cell, slot)}
            delta = inc.delta(moves)
            if delta < 0 or rng.random() < math.exp(-delta / max(temp, 1e-12)):
                inc.commit(moves)
                old = int(assignment[cell])
                assignment[cell] = slot
                free_ids[free_ids.index(slot)] = old
                stats.accepted += 1
                stats.relocations += 1
                if inc.total < best_total:
                    best_total = inc.total
                    best_assignment = assignment.copy()
        temp *= cooling
    stats.final_temp = temp
    if inc.total > best_total:
        # The walk ended above its best visited state: restore it.
        assignment[:] = best_assignment
        apply_assignment(design, grid, assignment)
    return stats


def _calibrate_temp(design, grid, assigned, inc, rng) -> float:
    """Initial temperature: a twentieth of the mean |ΔHPWL| of sampled moves.

    Refinement starts from a structured assignment, so the walk must
    stay near it — a temperature at the full mean delta (the classic
    from-scratch choice) would scramble the greedy solution faster than
    the cooling schedule can recover it.
    """
    deltas = []
    for _ in range(48):
        cell = assigned[int(rng.integers(0, len(assigned)))]
        slot = int(rng.integers(0, grid.num_slots))
        if grid.w[slot] < design.w[cell] - 1e-9:
            continue
        deltas.append(abs(inc.delta({cell: slot_position(design, grid, cell, slot)})))
    return 0.05 * float(np.mean(deltas)) if deltas else 1.0


@dataclass
class SlotPlacementResult:
    """Outcome of :func:`place_slots`.

    Attributes:
        slot_grid: the generated :class:`~repro.slots.grid.SlotGrid`.
        slot_assignment: per-cell slot ids (``-1`` for fixed / macro).
        hpwl_initial: HPWL after the initial assignment.
        hpwl_final: HPWL after annealing refinement.
        sa: annealing telemetry.
    """

    slot_grid: SlotGrid
    slot_assignment: np.ndarray
    hpwl_initial: float
    hpwl_final: float
    sa: SaStats


def place_slots(
    design: Design, params: SlotParams | None = None, seed: int = 0
) -> SlotPlacementResult:
    """Fixed-slot placement: grid, initial assignment, SA refinement.

    Deterministic for a fixed ``(design, params, seed)``; the design's
    positions are mutated in place.
    """
    params = params or SlotParams()
    params.validate()
    with obs.span("slots/place", cells=int(design.movable.sum())) as sp:
        with obs.span("slots/grid"):
            grid = generate_slots(design, margin=params.margin, seed=seed)
        with obs.span("slots/initial", strategy=params.initial):
            if params.initial == "random":
                assignment = random_assignment(design, grid, seed=seed)
            else:
                assignment = greedy_assignment(design, grid, seed=seed)
            apply_assignment(design, grid, assignment)
        hpwl_initial = design.hpwl()
        with obs.span("slots/sa"):
            stats = sa_refine(design, grid, assignment, params, seed=seed)
        hpwl_final = design.hpwl()
        sp.set(
            slots=grid.num_slots,
            hpwl_initial=hpwl_initial,
            hpwl_final=hpwl_final,
            sa_accepted=stats.accepted,
        )
    return SlotPlacementResult(
        slot_grid=grid,
        slot_assignment=assignment,
        hpwl_initial=hpwl_initial,
        hpwl_final=hpwl_final,
        sa=stats,
    )
